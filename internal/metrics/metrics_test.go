package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdx/internal/core"
)

func TestEvaluatePerfectMatch(t *testing.T) {
	truth := []core.FD{{LHS: []int{0, 1}, RHS: 2}, {LHS: []int{3}, RHS: 4}}
	got := Evaluate(truth, truth, false)
	if got.Precision != 1 || got.Recall != 1 || got.F1 != 1 {
		t.Errorf("perfect match scored %v", got)
	}
}

func TestEvaluateEmptyFound(t *testing.T) {
	truth := []core.FD{{LHS: []int{0}, RHS: 1}}
	got := Evaluate(truth, nil, false)
	if got.Precision != 0 || got.Recall != 0 || got.F1 != 0 {
		t.Errorf("empty found scored %v", got)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	found := []core.FD{{LHS: []int{0}, RHS: 1}}
	got := Evaluate(nil, found, false)
	if got.Precision != 0 || got.Recall != 0 {
		t.Errorf("empty truth scored %v", got)
	}
}

func TestEvaluatePartial(t *testing.T) {
	truth := []core.FD{{LHS: []int{0, 1}, RHS: 2}} // edges (0,2), (1,2)
	found := []core.FD{{LHS: []int{0}, RHS: 2}, {LHS: []int{3}, RHS: 2}}
	got := Evaluate(truth, found, false)
	if got.Precision != 0.5 {
		t.Errorf("precision = %v, want 0.5", got.Precision)
	}
	if got.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", got.Recall)
	}
}

func TestEvaluateUndirected(t *testing.T) {
	truth := []core.FD{{LHS: []int{0}, RHS: 1}}
	found := []core.FD{{LHS: []int{1}, RHS: 0}} // reversed
	if got := Evaluate(truth, found, false); got.F1 != 0 {
		t.Errorf("directed eval accepted reversed edge: %v", got)
	}
	if got := Evaluate(truth, found, true); got.F1 != 1 {
		t.Errorf("undirected eval rejected reversed edge: %v", got)
	}
}

func TestEvaluateBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() []core.FD {
			var fds []core.FD
			for i := 0; i < rng.Intn(5); i++ {
				fd := core.FD{LHS: []int{rng.Intn(6)}, RHS: rng.Intn(6)}
				fd.Normalize()
				if len(fd.LHS) > 0 {
					fds = append(fds, fd)
				}
			}
			return fds
		}
		truth, found := gen(), gen()
		m := Evaluate(truth, found, rng.Intn(2) == 0)
		return m.Precision >= 0 && m.Precision <= 1 &&
			m.Recall >= 0 && m.Recall <= 1 &&
			m.F1 >= 0 && m.F1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateSelfMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fds []core.FD
		for i := 0; i < 1+rng.Intn(5); i++ {
			fd := core.FD{LHS: []int{rng.Intn(4)}, RHS: 4 + rng.Intn(3)}
			fd.Normalize()
			fds = append(fds, fd)
		}
		m := Evaluate(fds, fds, false)
		return m.Precision == 1 && m.Recall == 1 && m.F1 == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianByF1(t *testing.T) {
	trials := []PRF1{
		{Precision: 1, Recall: 0.2, F1: 0.33},
		{Precision: 0.5, Recall: 0.5, F1: 0.5},
		{Precision: 0.9, Recall: 0.9, F1: 0.9},
	}
	m := MedianByF1(trials)
	if m.F1 != 0.5 || m.Precision != 0.5 {
		t.Errorf("median = %v", m)
	}
	if got := MedianByF1(nil); got.F1 != 0 {
		t.Error("empty median should be zero")
	}
	// Even count: lower-middle.
	even := append(trials, PRF1{F1: 0.95})
	if MedianByF1(even).F1 != 0.5 {
		t.Errorf("even median = %v", MedianByF1(even))
	}
}

func TestMedianFloat(t *testing.T) {
	if MedianFloat([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if MedianFloat([]float64{4, 1, 2, 3}) != 2 {
		t.Error("even (lower-middle) median wrong")
	}
	if MedianFloat(nil) != 0 {
		t.Error("empty median wrong")
	}
}
