// Package metrics implements the paper's evaluation measures (§5.1,
// "Metrics"): precision, recall, and F1 over the *edges* of discovered FDs
// — an FD X→Y contributes one edge per determinant attribute — plus the
// median-keeping aggregation the paper uses across synthetic trials.
package metrics

import (
	"sort"

	"fdx/internal/core"
)

// PRF1 bundles precision, recall and F1.
type PRF1 struct {
	Precision, Recall, F1 float64
}

// EdgeSet collects the (lhs, rhs) pairs of a set of FDs.
func EdgeSet(fds []core.FD) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, fd := range fds {
		for _, e := range fd.Edges() {
			out[e] = true
		}
	}
	return out
}

// Evaluate scores discovered FDs against ground truth over directed edges.
// With undirected=true an edge counts as correct in either orientation
// (used when a method reports dependencies without direction).
func Evaluate(truth, found []core.FD, undirected bool) PRF1 {
	tset := EdgeSet(truth)
	fset := EdgeSet(found)
	match := func(e [2]int, set map[[2]int]bool) bool {
		if set[e] {
			return true
		}
		if undirected && set[[2]int{e[1], e[0]}] {
			return true
		}
		return false
	}
	correct := 0
	for e := range fset {
		if match(e, tset) {
			correct++
		}
	}
	recallHits := 0
	for e := range tset {
		if match(e, fset) {
			recallHits++
		}
	}
	var p, r float64
	if len(fset) > 0 {
		p = float64(correct) / float64(len(fset))
	}
	if len(tset) > 0 {
		r = float64(recallHits) / float64(len(tset))
	}
	return PRF1{Precision: p, Recall: r, F1: f1(p, r)}
}

// f1 is the harmonic mean of precision and recall.
// (fdx:numeric-kernel: p and r are count ratios; p+r is exactly zero only
// when both are, which is the division-by-zero guard.)
func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MedianByF1 returns the trial whose F1 is the median of the slice,
// preserving the coupling between precision, recall and F1 that the paper
// calls out ("to ensure that we maintain the coupling amongst Precision,
// Recall, and F1, we report the median performance"). Ties keep the first
// of the tied trials; an even count returns the lower-middle trial.
func MedianByF1(trials []PRF1) PRF1 {
	if len(trials) == 0 {
		return PRF1{}
	}
	sorted := append([]PRF1(nil), trials...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].F1 < sorted[j].F1 })
	return sorted[(len(sorted)-1)/2]
}

// MedianFloat returns the median of a float slice (lower-middle for even
// counts), 0 for empty input.
func MedianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}
