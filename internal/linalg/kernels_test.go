package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// TestMulMatchesNaive checks the blocked/SIMD multiply against the frozen
// seed kernel across shapes that exercise every tile-remainder path
// (rows % 4, cols % 8, tiny and empty dims).
func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{0, 0, 0}, {1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {4, 8, 8},
		{5, 7, 9}, {8, 8, 8}, {13, 17, 19}, {16, 16, 16},
		{31, 33, 35}, {64, 64, 64}, {67, 1, 67}, {1, 67, 1},
	}
	for _, sh := range shapes {
		n, k, m := sh[0], sh[1], sh[2]
		a := randDense(rng, n, k)
		b := randDense(rng, k, m)
		want := MulNaive(a, b)
		got := Mul(a, b)
		// FMA fuses multiply-add, so allow last-bit drift scaled by the
		// reduction length.
		tol := 1e-12 * float64(k+1)
		if d := MaxAbsDiff(want, got); d > tol {
			t.Errorf("Mul %dx%dx%d: max diff %g > %g", n, k, m, d, tol)
		}
	}
}

// TestMulToRejectsBadShapes checks the panic contracts.
func TestMulToRejectsBadShapes(t *testing.T) {
	a := NewDense(3, 4)
	b := NewDense(4, 5)
	assertPanics(t, "inner mismatch", func() { MulTo(NewDense(3, 5), b, a) })
	assertPanics(t, "result shape", func() { MulTo(NewDense(5, 3), a, b) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestMulToOverwritesResult checks that stale values in c do not leak into
// the product.
func TestMulToOverwritesResult(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 9, 11)
	b := randDense(rng, 11, 10)
	c := randDense(rng, 9, 10) // garbage contents
	MulTo(c, a, b)
	want := MulNaive(a, b)
	if d := MaxAbsDiff(want, c); d > 1e-11 {
		t.Errorf("stale c leaked into result: max diff %g", d)
	}
}

// TestAxpyDotMatchScalar checks the fused primitives against plain scalar
// loops at lengths hitting each unroll remainder (16/4/1 lanes).
func TestAxpyDotMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 100, 1003} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		wantDot := 0.0
		for i := range x {
			wantDot += x[i] * y[i]
		}
		tol := 1e-12 * float64(n+1)
		if got := Dot(x, y); math.Abs(got-wantDot) > tol {
			t.Errorf("Dot n=%d: got %g want %g", n, got, wantDot)
		}
		alpha := 1.7
		wantY := make([]float64, n)
		for i := range y {
			wantY[i] = y[i] + alpha*x[i]
		}
		Axpy(alpha, x, y)
		for i := range y {
			if math.Abs(y[i]-wantY[i]) > 1e-12 {
				t.Fatalf("Axpy n=%d index %d: got %g want %g", n, i, y[i], wantY[i])
			}
		}
	}
}

// TestAxpyDotLengthMismatchPanics checks the guard rails.
func TestAxpyDotLengthMismatchPanics(t *testing.T) {
	assertPanics(t, "Axpy", func() { Axpy(1, make([]float64, 3), make([]float64, 4)) })
	assertPanics(t, "Dot", func() { Dot(make([]float64, 3), make([]float64, 4)) })
}

// TestMulDeterministicAcrossRuns checks bit-for-bit repeatability of the
// blocked multiply, including the parallel fan-out path (forced by the
// large shape when GOMAXPROCS > 1).
func TestMulDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("large multiply")
	}
	rng := rand.New(rand.NewSource(10))
	a := randDense(rng, 160, 160)
	b := randDense(rng, 160, 160)
	first := Mul(a, b)
	for run := 0; run < 3; run++ {
		again := Mul(a, b)
		for i := range first.data {
			if first.data[i] != again.data[i] {
				t.Fatalf("run %d: element %d differs: %v vs %v", run, i, first.data[i], again.data[i])
			}
		}
	}
}

// TestMulToZeroAllocSteadyState checks that repeated multiplies into a
// reused result matrix stay allocation-free once the pack pool is warm.
func TestMulToZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 32, 32)
	b := randDense(rng, 32, 32)
	c := NewDense(32, 32)
	MulTo(c, a, b) // warm the pack pool
	allocs := testing.AllocsPerRun(20, func() { MulTo(c, a, b) })
	if allocs > 0 {
		t.Errorf("MulTo steady state allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkMulBlocked256(b *testing.B) { benchMul(b, Mul) }
func BenchmarkMulNaive256(b *testing.B)   { benchMul(b, MulNaive) }

func benchMul(b *testing.B, mul func(x, y *Dense) *Dense) {
	rng := rand.New(rand.NewSource(12))
	x := randDense(rng, 256, 256)
	y := randDense(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mul(x, y)
	}
}

func BenchmarkDot1024(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}
