package linalg

import (
	"errors"
	"fmt"
	"math"

	"fdx/internal/faults"
	"fdx/internal/fdxerr"
)

// ErrNotPositiveDefinite is returned when a factorization encounters a
// non-positive pivot. It wraps fdxerr.ErrNonPositivePivot, so callers can
// match either name with errors.Is.
var ErrNotPositiveDefinite = fmt.Errorf("linalg: matrix is not positive definite: %w", fdxerr.ErrNonPositivePivot)

// Cholesky computes the lower-triangular L with a = L·Lᵀ.
// a must be symmetric positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		lj := l.Row(j)[:j]
		d := a.At(j, j) - Dot(lj, lj)
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j) - Dot(l.Row(i)[:j], lj)
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// LDL computes the unit lower-triangular L and diagonal d with a = L·diag(d)·Lᵀ.
// a must be symmetric with non-zero pivots (positive definite in practice).
func LDL(a *Dense) (l *Dense, d []float64, err error) {
	n := a.rows
	if a.cols != n {
		return nil, nil, fmt.Errorf("linalg: LDL of non-square %dx%d matrix", a.rows, a.cols)
	}
	l = Identity(n)
	d = make([]float64, n)
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			dj -= l.At(j, k) * l.At(j, k) * d[k]
		}
		if dj <= 0 {
			return nil, nil, ErrNotPositiveDefinite
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k) * d[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, d, nil
}

// UDU computes the unit upper-triangular U and diagonal d with a = U·diag(d)·Uᵀ.
//
// This is the factorization FDX applies to the estimated inverse covariance
// Θ (paper §4.2, Alg. 1): with Θ = U·D·Uᵀ and U unit upper triangular, the
// autoregression matrix is B = I − U, whose non-zero super-diagonal entries
// in column j give the determinant set of the FD for attribute j.
//
// It is the mirror image of LDL: elimination proceeds from the last row and
// column toward the first.
func UDU(a *Dense) (u *Dense, d []float64, err error) {
	n := a.rows
	if a.cols != n {
		return nil, nil, fmt.Errorf("linalg: UDU of non-square %dx%d matrix: %w", a.rows, a.cols, fdxerr.ErrBadInput)
	}
	u = Identity(n)
	d = make([]float64, n)
	// Fault injection: report a non-positive pivot for this factorization
	// (one Fire per UDU call, at the first pivot processed).
	if n > 0 && faults.Fire(faults.NonPositivePivot) {
		return nil, nil, ErrNotPositiveDefinite
	}
	// scaled[k] caches u[j][k]*d[k] for the current column j, turning the
	// weighted reductions below into plain fused dot products.
	scaled := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		uj := u.Row(j)[j+1:]
		sc := scaled[j+1:]
		for k, v := range uj {
			sc[k] = v * d[j+1+k]
		}
		dj := a.At(j, j) - Dot(uj, sc)
		if dj <= 0 {
			return nil, nil, ErrNotPositiveDefinite
		}
		d[j] = dj
		for i := 0; i < j; i++ {
			s := a.At(i, j) - Dot(u.Row(i)[j+1:], sc)
			u.Set(i, j, s/dj)
		}
	}
	return u, d, nil
}

// ReconstructUDU returns U·diag(d)·Uᵀ, the inverse operation of UDU.
// Panics if u is not square or len(d) differs from its dimension.
func ReconstructUDU(u *Dense, d []float64) *Dense {
	n := u.rows
	if u.cols != n || len(d) != n {
		panic(fmt.Sprintf("linalg: ReconstructUDU dimension mismatch %dx%d with %d-vector", u.rows, u.cols, len(d)))
	}
	ud := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ud.Set(i, j, u.At(i, j)*d[j])
		}
	}
	return Mul(ud, u.Transpose())
}

// SolveLower solves L·x = b for x, with L lower triangular (non-unit diagonal).
// Panics if l is not square or len(b) differs from its dimension.
func SolveLower(l *Dense, b []float64) []float64 {
	n := l.rows
	if l.cols != n || len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower dimension mismatch %dx%d with %d-vector", l.rows, l.cols, len(b)))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		row := l.Row(i)
		x[i] = (b[i] - Dot(row[:i], x[:i])) / row[i]
	}
	return x
}

// SolveUpper solves U·x = b for x, with U upper triangular (non-unit diagonal).
// Panics if u is not square or len(b) differs from its dimension.
func SolveUpper(u *Dense, b []float64) []float64 {
	n := u.rows
	if u.cols != n || len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpper dimension mismatch %dx%d with %d-vector", u.rows, u.cols, len(b)))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		row := u.Row(i)
		x[i] = (b[i] - Dot(row[i+1:], x[i+1:])) / row[i]
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive definite a via Cholesky.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y := SolveLower(l, b)
	return SolveUpper(l.Transpose(), y), nil
}

// InverseSPD returns a⁻¹ for symmetric positive definite a via Cholesky.
func InverseSPD(a *Dense) (*Dense, error) {
	n := a.rows
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	lt := l.Transpose()
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		y := SolveLower(l, e)
		x := SolveUpper(lt, y)
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	inv.Symmetrize()
	return inv, nil
}

// Inverse returns a⁻¹ for a general square matrix via Gauss-Jordan
// elimination with partial pivoting. Returns an error if a is singular.
func Inverse(a *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Inverse of non-square %dx%d matrix", a.rows, a.cols)
	}
	work := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the row with the largest pivot.
		pivot, pmax := col, math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		//fdx:lint-ignore floatcmp exact-zero pivot is the singularity sentinel; any nonzero magnitude, however small, is a usable pivot
		if pmax == 0 {
			return nil, errors.New("linalg: singular matrix")
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := work.At(col, col)
		for j := 0; j < n; j++ {
			work.Set(col, j, work.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			//fdx:lint-ignore floatcmp skipping an exactly-zero factor elides a no-op elimination step; near-zero factors must still be applied
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				work.Add(r, j, -f*work.At(col, j))
				inv.Add(r, j, -f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
