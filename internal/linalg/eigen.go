package linalg

import (
	"fmt"
	"math"

	"fdx/internal/fdxerr"
)

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns the eigenvalues (unsorted) and the
// matrix of column eigenvectors V with a = V·diag(vals)·Vᵀ.
func SymEigen(a *Dense) (vals []float64, vecs *Dense, err error) {
	n := a.rows
	if a.cols != n {
		return nil, nil, fmt.Errorf("linalg: SymEigen of non-square %dx%d matrix: %w", a.rows, a.cols, fdxerr.ErrBadInput)
	}
	m := a.Clone()
	m.Symmetrize()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = m.At(i, i)
	}
	return vals, v, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to m (two-sided) and
// accumulates it into v (one-sided).
//
//fdx:lint-ignore dimcheck private hot-loop helper; the Jacobi driver allocates m and v as n-by-n before the sweep, and a per-rotation guard would dominate the O(n) body
func rotate(m, v *Dense, p, q int, c, s float64) {
	n := m.rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// MinEigenvalue returns the smallest eigenvalue of symmetric a.
func MinEigenvalue(a *Dense) (float64, error) {
	vals, _, err := SymEigen(a)
	if err != nil {
		return 0, err
	}
	min := math.Inf(1)
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	return min, nil
}

// NearestSPD shifts the diagonal of symmetric a just enough that its
// smallest eigenvalue is at least floor, returning a new matrix. It is used
// to regularize empirical covariance estimates before factorization.
func NearestSPD(a *Dense, floor float64) (*Dense, error) {
	min, err := MinEigenvalue(a)
	if err != nil {
		return nil, err
	}
	out := a.Clone()
	out.Symmetrize()
	if min < floor {
		shift := floor - min
		for i := 0; i < out.rows; i++ {
			out.Add(i, i, shift)
		}
	}
	return out, nil
}
