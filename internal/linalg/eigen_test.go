package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		a := randomSPD(rng, n)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			return false
		}
		// a ≈ V diag(vals) Vᵀ
		vd := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, vecs.At(i, j)*vals[j])
			}
		}
		if MaxAbsDiff(Mul(vd, vecs.Transpose()), a) > 1e-7 {
			return false
		}
		// V orthonormal
		return MaxAbsDiff(Mul(vecs, vecs.Transpose()), Identity(n)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymEigenKnownValues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(vals)
	if !almostEq(vals[0], 1, 1e-10) || !almostEq(vals[1], 3, 1e-10) {
		t.Errorf("eigenvalues = %v, want [1 3]", vals)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(NewDense(2, 3)); err == nil {
		t.Error("SymEigen accepted a non-square matrix")
	}
}

func TestMinEigenvalue(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1})
	min, err := MinEigenvalue(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(min, -1, 1e-10) {
		t.Errorf("MinEigenvalue = %v, want -1", min)
	}
}

func TestNearestSPDMakesFactorizable(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1})
	fixed, err := NearestSPD(a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cholesky(fixed); err != nil {
		t.Errorf("NearestSPD output not factorizable: %v", err)
	}
	min, _ := MinEigenvalue(fixed)
	if min < 1e-6-1e-9 {
		t.Errorf("min eigenvalue %v below floor", min)
	}
}

func TestNearestSPDLeavesSPDUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 4)
	fixed, err := NearestSPD(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(a, fixed) > 1e-9 {
		t.Error("NearestSPD modified an already-SPD matrix")
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		p := IdentityPerm(n)
		rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		if !p.IsValid() {
			return false
		}
		a := randomSPD(rng, n)
		return MaxAbsDiff(UnpermuteSym(PermuteSym(a, p), p), a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	q := p.Inverse()
	want := Permutation{1, 2, 0}
	for i := range q {
		if q[i] != want[i] {
			t.Fatalf("Inverse = %v, want %v", q, want)
		}
	}
}

func TestPermutationValidity(t *testing.T) {
	if (Permutation{0, 0, 1}).IsValid() {
		t.Error("duplicate entries accepted")
	}
	if (Permutation{0, 3}).IsValid() {
		t.Error("out-of-range entry accepted")
	}
	if !(Permutation{}).IsValid() {
		t.Error("empty permutation should be valid")
	}
	_ = math.Pi
}
