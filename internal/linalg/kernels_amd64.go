//go:build amd64

package linalg

// Declarations for the AVX2+FMA kernels in kernels_amd64.s, plus the
// CPUID feature probe that gates them. The assembly is only ever reached
// through the dispatch in kernels.go after haveFMA() has confirmed AVX2,
// FMA, and OS support for saving YMM state.

func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func fmaKernel4x8(k int, apack, b *float64, ldb int, c *float64, ldc int)

//go:noescape
func fmaAxpy(alpha float64, x, y *float64, n int)

//go:noescape
func fmaDot(x, y *float64, n int) float64

// haveFMA reports whether the CPU and OS support the AVX2+FMA kernels:
// CPUID leaf 1 must show OSXSAVE+AVX+FMA, XGETBV(0) must show the OS
// saves XMM and YMM state, and CPUID leaf 7 must show AVX2.
func haveFMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
		fma     = 1 << 12
	)
	if ecx&osxsave == 0 || ecx&avx == 0 || ecx&fma == 0 {
		return false
	}
	if xa, _ := xgetbv0(); xa&0x6 != 0x6 {
		return false
	}
	_, ebx, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}
