package linalg

import (
	"math/rand"
	"testing"
)

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 9
	s := randomDense(rng, k, k)
	idx := []int{1, 3, 4, 8}
	n := len(idx)

	sub := NewDense(n, n)
	GatherSym(sub, s, idx)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if got, want := sub.At(a, b), s.At(idx[a], idx[b]); got != want {
				t.Fatalf("gather[%d,%d] = %v, want %v", a, b, want, got)
			}
		}
	}

	// Scatter into a zeroed matrix: the idx×idx cross holds the block
	// bit-for-bit, every other entry stays exactly zero.
	dst := NewDense(k, k)
	ScatterSym(dst, sub, idx)
	inIdx := make(map[int]bool, n)
	for _, v := range idx {
		inIdx[v] = true
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if inIdx[i] && inIdx[j] {
				if dst.At(i, j) != s.At(i, j) {
					t.Fatalf("scatter[%d,%d] = %v, want %v", i, j, dst.At(i, j), s.At(i, j))
				}
			} else if dst.At(i, j) != 0 {
				t.Fatalf("scatter touched off-block entry (%d,%d) = %v", i, j, dst.At(i, j))
			}
		}
	}
}

func TestScatterDisjointBlocksAssembleBlockDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := 8
	blocks := [][]int{{0, 2, 5}, {1, 7}, {3, 4, 6}}
	dst := NewDense(k, k)
	subs := make([]*Dense, len(blocks))
	for c, idx := range blocks {
		subs[c] = randomDense(rng, len(idx), len(idx))
		ScatterSym(dst, subs[c], idx)
	}
	comp := make([]int, k)
	for c, idx := range blocks {
		for _, v := range idx {
			comp[v] = c
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if comp[i] != comp[j] && dst.At(i, j) != 0 {
				t.Fatalf("cross-block entry (%d,%d) = %v, want exact 0", i, j, dst.At(i, j))
			}
		}
	}
}

func TestPackUnpackSymUpperRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, k := range []int{0, 1, 2, 5, 12} {
		s := randomDense(rng, k, k)
		s.Symmetrize()
		packed := make([]float64, k*(k+1)/2)
		PackSymUpper(packed, s)
		out := NewDense(k, k)
		UnpackSymUpper(out, packed)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if out.At(i, j) != s.At(i, j) {
					t.Fatalf("k=%d: roundtrip[%d,%d] = %v, want %v", k, i, j, out.At(i, j), s.At(i, j))
				}
			}
		}
	}
}

func TestGatherScatterPanicOnShapeMismatch(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on shape mismatch", name)
			}
		}()
		f()
	}
	s := NewDense(4, 4)
	mustPanic("GatherSym", func() { GatherSym(NewDense(3, 3), s, []int{0, 1}) })
	mustPanic("ScatterSym", func() { ScatterSym(s, NewDense(3, 3), []int{0, 1}) })
	mustPanic("PackSymUpper", func() { PackSymUpper(make([]float64, 3), s) })
	mustPanic("UnpackSymUpper", func() { UnpackSymUpper(s, make([]float64, 3)) })
}

// TestGatherScatterZeroAlloc is the runtime half of the zero-allocation
// contract the gather/scatter/pack kernels advertise in their doc
// comments.
func TestGatherScatterZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randomDense(rng, 32, 32)
	s.Symmetrize()
	idx := []int{2, 5, 11, 17, 23, 29}
	sub := NewDense(len(idx), len(idx))
	dst := NewDense(32, 32)
	packed := make([]float64, 32*33/2)
	kernels := []struct {
		name string
		f    func()
	}{
		{"GatherSym", func() { GatherSym(sub, s, idx) }},
		{"ScatterSym", func() { ScatterSym(dst, sub, idx) }},
		{"PackSymUpper", func() { PackSymUpper(packed, s) }},
		{"UnpackSymUpper", func() { UnpackSymUpper(dst, packed) }},
	}
	for _, k := range kernels {
		if allocs := testing.AllocsPerRun(20, k.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", k.name, allocs)
		}
	}
}

func TestAxpy32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 131 // odd length exercises the unrolled tail
	x32 := make([]float32, n)
	x64 := make([]float64, n)
	for i := range x32 {
		// 0/1 indicator values — the pair-transform samples Axpy32 exists
		// for — are exact in float32, so both accumulations must agree
		// bit-for-bit.
		v := float64(rng.Intn(2))
		x32[i] = float32(v)
		x64[i] = v
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	for i := range y1 {
		y1[i] = rng.NormFloat64()
		y2[i] = y1[i]
	}
	alpha := 0.37
	Axpy32(alpha, x32, y1)
	Axpy(alpha, x64, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("Axpy32[%d] = %v, Axpy = %v", i, y1[i], y2[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { Axpy32(alpha, x32, y1) }); allocs != 0 {
		t.Errorf("Axpy32: %v allocs/op, want 0", allocs)
	}
}

func TestDense32Basics(t *testing.T) {
	m := NewDense32(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Row(1)[2] != 5 {
		t.Fatalf("Set/At/Row disagree")
	}
	if m.Rows() != 3 || m.Cols() != 4 || len(m.Data()) != 12 {
		t.Fatalf("Rows/Cols/Data disagree with dimensions")
	}
	sub := NewDense32Data(2, 2, m.Data()[:4])
	if &sub.Data()[0] != &m.Data()[0] {
		t.Fatal("NewDense32Data copied instead of aliasing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense32Data: no panic on length mismatch")
		}
	}()
	NewDense32Data(2, 2, make([]float32, 3))
}
