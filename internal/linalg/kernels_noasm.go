//go:build !amd64

package linalg

// Non-amd64 build: no SIMD kernels. haveFMA reports false, so the
// dispatch in kernels.go always takes the portable Go paths and these
// stubs are unreachable; they exist only to satisfy the linker.

func haveFMA() bool { return false }

// fmaKernel4x8 is unreachable on this architecture. Panics if called.
func fmaKernel4x8(k int, apack, b *float64, ldb int, c *float64, ldc int) {
	panic("linalg: SIMD kernel called without hardware support")
}

// fmaAxpy is unreachable on this architecture. Panics if called.
func fmaAxpy(alpha float64, x, y *float64, n int) {
	panic("linalg: SIMD kernel called without hardware support")
}

// fmaDot is unreachable on this architecture. Panics if called.
func fmaDot(x, y *float64, n int) float64 {
	panic("linalg: SIMD kernel called without hardware support")
}
