#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaKernel4x8(k int, apack, b *float64, ldb int, c *float64, ldc int)
//
// C[0:4][0:8] += A[0:4][0:k] * B[0:k][0:8], with the A panel packed
// column-major (apack[kk*4+r] = A[r][kk]), B strided by ldb elements, and
// C strided by ldc elements. Accumulators live in Y0..Y7 for the whole k
// loop; only the final add touches C.
TEXT ·fmaKernel4x8(SB), NOSPLIT, $0-48
	MOVQ k+0(FP), CX
	MOVQ apack+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ ldb+24(FP), R9
	SHLQ $3, R9
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R10
	SHLQ $3, R10

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    tail

loop:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	ADDQ    R9, DX

	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	ADDQ $32, SI
	DECQ CX
	JNZ  loop

tail:
	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R10, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	VADDPD  32(DI), Y3, Y3
	VMOVUPD Y3, 32(DI)
	ADDQ    R10, DI
	VADDPD  (DI), Y4, Y4
	VMOVUPD Y4, (DI)
	VADDPD  32(DI), Y5, Y5
	VMOVUPD Y5, 32(DI)
	ADDQ    R10, DI
	VADDPD  (DI), Y6, Y6
	VMOVUPD Y6, (DI)
	VADDPD  32(DI), Y7, Y7
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func fmaAxpy(alpha float64, x, y *float64, n int)
// y[0:n] += alpha * x[0:n]
TEXT ·fmaAxpy(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX

	MOVQ CX, BX
	SHRQ $4, BX
	JZ   axpy_rem8

axpy_loop16:
	VMOVUPD     (SI), Y1
	VMOVUPD     32(SI), Y2
	VMOVUPD     64(SI), Y3
	VMOVUPD     96(SI), Y4
	VFMADD213PD (DI), Y0, Y1
	VFMADD213PD 32(DI), Y0, Y2
	VFMADD213PD 64(DI), Y0, Y3
	VFMADD213PD 96(DI), Y0, Y4
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	VMOVUPD     Y3, 64(DI)
	VMOVUPD     Y4, 96(DI)
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         axpy_loop16

axpy_rem8:
	ANDQ $15, CX
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   axpy_rem1

axpy_loop4:
	VMOVUPD     (SI), Y1
	VFMADD213PD (DI), Y0, Y1
	VMOVUPD     Y1, (DI)
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        BX
	JNZ         axpy_loop4

axpy_rem1:
	ANDQ $3, CX
	JZ   axpy_done

axpy_loop1:
	VMOVSD      (SI), X1
	VFMADD213SD (DI), X0, X1
	VMOVSD      X1, (DI)
	ADDQ        $8, SI
	ADDQ        $8, DI
	DECQ        CX
	JNZ         axpy_loop1

axpy_done:
	VZEROUPPER
	RET

// func fmaDot(x, y *float64, n int) float64
TEXT ·fmaDot(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	MOVQ CX, BX
	SHRQ $4, BX
	JZ   dot_rem8

dot_loop16:
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VMOVUPD     64(SI), Y6
	VMOVUPD     96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         dot_loop16

dot_rem8:
	ANDQ $15, CX
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   dot_fold

dot_loop4:
	VMOVUPD     (SI), Y4
	VFMADD231PD (DI), Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, DI
	DECQ        BX
	JNZ         dot_loop4

dot_fold:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0

	ANDQ $3, CX
	JZ   dot_done

dot_loop1:
	VMOVSD      (SI), X4
	VMOVSD      (DI), X5
	VFMADD231SD X5, X4, X0
	ADDQ        $8, SI
	ADDQ        $8, DI
	DECQ        CX
	JNZ         dot_loop1

dot_done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET
