package linalg

// Dense32 is a row-major float32 matrix — the compact backing store for
// the pair-transform's sample block (core.TransformOptions.Compact). The
// transform emits only 0/1 indicator cells, which float32 represents
// exactly, so the compact store halves memory traffic during covariance
// accumulation without changing a single bit of any accumulated
// statistic: every arithmetic consumer widens to float64 first (see
// Axpy32) and all accumulation stays in float64.
type Dense32 struct {
	rows, cols int
	data       []float32
}

// NewDense32 returns a zeroed rows×cols float32 matrix.
func NewDense32(rows, cols int) *Dense32 {
	return &Dense32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// NewDense32Data wraps an existing backing slice without copying.
// Panics if len(data) is not rows·cols.
func NewDense32Data(rows, cols int, data []float32) *Dense32 {
	if len(data) != rows*cols {
		panic("linalg: NewDense32Data backing slice length disagrees with dimensions")
	}
	return &Dense32{rows: rows, cols: cols, data: data}
}

// Dims returns the matrix dimensions.
func (m *Dense32) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense32) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense32) Cols() int { return m.cols }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense32) Row(i int) []float32 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing slice (row-major, aliased).
func (m *Dense32) Data() []float32 { return m.data }

// At returns element (i, j).
func (m *Dense32) At(i, j int) float64 { return float64(m.data[i*m.cols+j]) }

// Set assigns element (i, j).
func (m *Dense32) Set(i, j int, v float64) { m.data[i*m.cols+j] = float32(v) }

// Axpy32 computes y += alpha·x with a float32 source and float64
// accumulation: each x element is widened to float64 before the multiply,
// so for inputs float32 represents exactly (the 0/1 pair-transform
// samples) the result is bit-identical to Axpy on the float64
// representation of the same values. Panics if the slices differ in
// length.
// (fdx:numeric-kernel: widening float32→float64 is exact for every
// float32 value; no rounding happens before the float64 accumulate.)
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in gather_test.go.
func Axpy32(alpha float64, x []float32, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy32 length mismatch")
	}
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * float64(x[i])
		y[i+1] += alpha * float64(x[i+1])
		y[i+2] += alpha * float64(x[i+2])
		y[i+3] += alpha * float64(x[i+3])
	}
	for ; i < n; i++ {
		y[i] += alpha * float64(x[i])
	}
}
