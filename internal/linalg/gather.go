package linalg

// Gather/scatter kernels for block-screened solvers: a screening pass
// (internal/glasso) partitions the variables of a symmetric matrix into
// connected components, solves each component on a compact submatrix, and
// scatters the solution back into the full matrix. Both directions are
// plain index-mapped copies — no arithmetic — so a gathered block holds
// exactly the bits of the corresponding full-matrix entries.

// GatherSym fills dst with the principal submatrix of s selected by idx:
// dst[a][b] = s[idx[a]][idx[b]]. dst must be n×n for n = len(idx), and the
// indices must be in range for s (the usual caller passes one connected
// component of a screening partition, sorted ascending). s is not assumed
// symmetric — both triangles are copied as they are — so the gathered
// block preserves any asymmetry of the source bit-for-bit.
// Panics if dst is not len(idx)×len(idx).
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in gather_test.go.
func GatherSym(dst *Dense, s *Dense, idx []int) {
	n := len(idx)
	if r, c := dst.Dims(); r != n || c != n {
		panic("linalg: GatherSym destination dimension disagrees with index set")
	}
	for a := 0; a < n; a++ {
		srow := s.Row(idx[a])
		drow := dst.Row(a)
		for b := 0; b < n; b++ {
			drow[b] = srow[idx[b]]
		}
	}
}

// ScatterSym writes the n×n block sub into the positions of dst selected
// by idx: dst[idx[a]][idx[b]] = sub[a][b]. Entries of dst outside the
// idx×idx cross are untouched, so a caller scattering several disjoint
// blocks into a zeroed matrix obtains the block-diagonal assembly with
// exact zeros everywhere off-block. The write set is a function of idx
// alone — disjoint index sets touch disjoint entries — which is what lets
// screened blocks scatter concurrently and still produce bit-identical
// assemblies at any worker count.
// Panics if sub is not len(idx)×len(idx).
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in gather_test.go.
func ScatterSym(dst *Dense, sub *Dense, idx []int) {
	n := len(idx)
	if r, c := sub.Dims(); r != n || c != n {
		panic("linalg: ScatterSym block dimension disagrees with index set")
	}
	for a := 0; a < n; a++ {
		srow := sub.Row(a)
		drow := dst.Row(idx[a])
		for b := 0; b < n; b++ {
			drow[idx[b]] = srow[b]
		}
	}
}

// PackSymUpper packs the upper triangle (diagonal included) of the
// symmetric matrix s row by row into dst, which must have length
// k·(k+1)/2: entry (i, j), i ≤ j, lands at dst[i·k − i·(i−1)/2 + (j−i)].
// The packed form halves the memory of archived per-block precision
// estimates; UnpackSymUpper restores the full matrix exactly.
// Panics if dst's length disagrees with s's dimension.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in gather_test.go.
func PackSymUpper(dst []float64, s *Dense) {
	k, _ := s.Dims()
	if len(dst) != k*(k+1)/2 {
		panic("linalg: PackSymUpper buffer length disagrees with matrix dimension")
	}
	at := 0
	for i := 0; i < k; i++ {
		row := s.Row(i)
		at += copy(dst[at:], row[i:])
	}
}

// UnpackSymUpper is the inverse of PackSymUpper: it fills the k×k matrix
// dst from the packed upper triangle src, mirroring each off-diagonal
// entry into the lower triangle so the result is exactly symmetric.
// Panics if src's length disagrees with dst's dimension.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gate in gather_test.go.
func UnpackSymUpper(dst *Dense, src []float64) {
	k, _ := dst.Dims()
	if len(src) != k*(k+1)/2 {
		panic("linalg: UnpackSymUpper buffer length disagrees with matrix dimension")
	}
	at := 0
	for i := 0; i < k; i++ {
		row := dst.Row(i)
		n := copy(row[i:], src[at:at+(k-i)])
		at += n
		for j := i + 1; j < k; j++ {
			dst.Row(j)[i] = row[j]
		}
	}
}
