package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomDense(rng, 64, 64)
	y := randomDense(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUDU64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := UDU(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInverseSPD64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InverseSPD(a); err != nil {
			b.Fatal(err)
		}
	}
}
