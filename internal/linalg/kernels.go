package linalg

// This file is the scalar/portable half of the numeric kernel layer: fused
// vector primitives (Axpy, Dot), the cache-blocked register-tiled matrix
// multiply, and the frozen seed kernel the benchmark-regression harness
// measures against. On amd64 with AVX2+FMA the primitives dispatch to the
// assembly kernels in kernels_amd64.s (runtime CPUID-detected, overridable
// with FDX_NO_SIMD=1); everywhere else the Go fallbacks below run.
//
// Determinism contract: every kernel is deterministic for a fixed build,
// CPU, and input — the same call always produces the same bits. Kernels
// MAY order (and fuse) floating-point operations differently from a naive
// scalar loop, so results can differ in the last bits across CPU
// generations or with SIMD disabled; nothing in FDX compares results
// across machines bit-wise. Within one process the parallel and serial
// paths of every caller stay bit-for-bit identical because each output
// element is produced by exactly one chunk in a fixed intra-chunk order
// (see internal/par).

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"fdx/internal/par"
)

// simdEnabled reports whether the AVX2+FMA assembly kernels are in use.
// It is fixed at process start: CPUID does not change, and the
// FDX_NO_SIMD override is read once.
var simdEnabled = haveFMA() && os.Getenv("FDX_NO_SIMD") == ""

// SimdEnabled reports whether the hand-written SIMD kernels are active in
// this process (amd64 with AVX2+FMA, not disabled via FDX_NO_SIMD=1).
// The benchmark harness records it next to every measurement.
func SimdEnabled() bool { return simdEnabled }

// Axpy computes y[i] += alpha*x[i] over the paired elements of x and y.
// Panics if the slices have different lengths. An exactly-zero alpha still
// runs: NaN/Inf propagation matches the IEEE product, not a skip.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gates in kernels_test.go.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		// Constant-string panic: this guard must not drag fmt's allocations
		// into the zero-alloc kernel (see the fdx:zero-alloc marker).
		panic("linalg: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	if simdEnabled {
		fmaAxpy(alpha, &x[0], &y[0], len(x))
		return
	}
	axpyGeneric(alpha, x, y)
}

// axpyGeneric is the portable Axpy: 4-way unrolled so the independent
// accumulation chains pipeline on scalar FPUs. Panics if the slices have
// different lengths (Axpy checks first; this guard keeps the kernel safe
// if ever called directly).
//
// fdx:zero-alloc
func axpyGeneric(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) != n {
		panic("linalg: axpyGeneric length mismatch")
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Dot returns the inner product of x and y.
// Panics if the slices have different lengths.
//
// fdx:zero-alloc — verified statically by the hotalloc analyzer and at
// runtime by the AllocsPerRun gates in kernels_test.go.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		// Constant-string panic: see Axpy.
		panic("linalg: Dot length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	if simdEnabled {
		return fmaDot(&x[0], &y[0], len(x))
	}
	return dotGeneric(x, y)
}

// dotGeneric is the portable Dot: four independent partial sums folded in
// a fixed order, mirroring the lane structure of the SIMD kernel. Panics
// if the slices have different lengths (Dot checks first; this guard keeps
// the kernel safe if ever called directly).
//
// fdx:zero-alloc
func dotGeneric(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	if len(y) != n {
		panic("linalg: dotGeneric length mismatch")
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// MulNaive is the seed triple-loop matrix multiply, kept verbatim as the
// reference kernel for the benchmark-regression harness (`fdxbench
// -kernels` reports the blocked kernel's speedup against it) and as the
// semantic oracle in the kernel equivalence tests. Production callers use
// Mul/MulTo.
// Panics if the inner dimensions disagree.
func MulNaive(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			//fdx:lint-ignore floatcmp sparsity fast path: an exactly-zero multiplier contributes nothing to the accumulation
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// packPool recycles the A-panel packing buffers of MulTo so steady-state
// multiplies of a fixed size allocate only their result matrix.
var packPool = sync.Pool{New: func() any { return &packBuf{} }}

type packBuf struct{ data []float64 }

func getPack(n int) *packBuf {
	pb := packPool.Get().(*packBuf)
	if cap(pb.data) < n {
		pb.data = make([]float64, n)
	}
	pb.data = pb.data[:n]
	return pb
}

// mulParallelFlops is the a.rows*a.cols*b.cols product above which MulTo
// fans row blocks out across GOMAXPROCS workers. Below it the fan-out
// overhead outweighs the arithmetic.
const mulParallelFlops = 1 << 21

// MulTo computes c = a·b into the caller's preallocated c, returning c.
// c is fully overwritten and must not alias a or b.
// Panics if the inner dimensions disagree or c has the wrong shape.
//
// The kernel is cache-blocked and register-tiled: the A operand is packed
// 4 rows at a time, and each 4×8 tile of C accumulates in registers
// across the whole shared dimension (AVX2 FMA on amd64, an unrolled
// scalar tile elsewhere). Large products additionally fan the 4-row
// blocks out across GOMAXPROCS workers; every C element is still written
// by exactly one worker in a fixed order, so the result is identical at
// any parallelism.
func MulTo(c, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("linalg: MulTo result is %dx%d, want %dx%d", c.rows, c.cols, a.rows, b.cols))
	}
	n, m, kk := a.rows, b.cols, a.cols
	for i := range c.data {
		c.data[i] = 0
	}
	if n == 0 || m == 0 || kk == 0 {
		return c
	}
	rowBlocks := n / 4
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && n*m*kk >= mulParallelFlops && rowBlocks > 1 {
		if workers > rowBlocks {
			workers = rowBlocks
		}
		pool := par.New(workers)
		// Each task owns 4-row output blocks [4·lo, 4·hi) and its own
		// packing buffer; block boundaries depend only on the shape.
		pool.For(rowBlocks, 1, func(lo, hi int) {
			pb := getPack(4 * kk)
			for blk := lo; blk < hi; blk++ {
				mulRowBlock(c, a, b, 4*blk, pb.data)
			}
			packPool.Put(pb)
		})
		pool.Close()
	} else {
		pb := getPack(4 * kk)
		for blk := 0; blk < rowBlocks; blk++ {
			mulRowBlock(c, a, b, 4*blk, pb.data)
		}
		packPool.Put(pb)
	}
	// Remainder rows ([4·rowBlocks, n)) over all columns.
	mulEdge(c, a, b, 4*rowBlocks, n, 0, m)
	return c
}

// mulRowBlock accumulates the 4 output rows starting at i0 for every
// column, packing A's rows column-major so the inner kernels stream it.
// Panics if the operand shapes disagree or apack cannot hold the packed
// rows (MulTo validates first; this guard keeps the kernel self-contained).
func mulRowBlock(c, a, b *Dense, i0 int, apack []float64) {
	kk, m := a.cols, b.cols
	if b.rows != kk || c.cols != m || len(apack) < 4*kk {
		panic("linalg: mulRowBlock operand shapes disagree")
	}
	a0 := a.Row(i0)
	a1 := a.Row(i0 + 1)
	a2 := a.Row(i0 + 2)
	a3 := a.Row(i0 + 3)
	for k := 0; k < kk; k++ {
		ap := apack[4*k : 4*k+4 : 4*k+4]
		ap[0] = a0[k]
		ap[1] = a1[k]
		ap[2] = a2[k]
		ap[3] = a3[k]
	}
	j := 0
	if simdEnabled {
		for ; j+8 <= m; j += 8 {
			fmaKernel4x8(kk, &apack[0], &b.data[j], b.cols, &c.data[i0*c.cols+j], c.cols)
		}
	} else {
		for ; j+4 <= m; j += 4 {
			tile4x4(kk, apack, b, j, c, i0)
		}
	}
	// Leftover columns of this row block.
	mulEdge(c, a, b, i0, i0+4, j, m)
}

// tile4x4 is the portable register tile: C[i0:i0+4][j0:j0+4] accumulated
// in 16 scalars across the whole shared dimension.
func tile4x4(kk int, apack []float64, b *Dense, j0 int, c *Dense, i0 int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for k := 0; k < kk; k++ {
		bk := b.data[k*b.cols+j0 : k*b.cols+j0+4 : k*b.cols+j0+4]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		ap := apack[4*k : 4*k+4 : 4*k+4]
		av := ap[0]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = ap[1]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = ap[2]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = ap[3]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	w := c.cols
	crow := c.data[i0*w+j0 : i0*w+j0+4 : i0*w+j0+4]
	crow[0] += c00
	crow[1] += c01
	crow[2] += c02
	crow[3] += c03
	crow = c.data[(i0+1)*w+j0 : (i0+1)*w+j0+4 : (i0+1)*w+j0+4]
	crow[0] += c10
	crow[1] += c11
	crow[2] += c12
	crow[3] += c13
	crow = c.data[(i0+2)*w+j0 : (i0+2)*w+j0+4 : (i0+2)*w+j0+4]
	crow[0] += c20
	crow[1] += c21
	crow[2] += c22
	crow[3] += c23
	crow = c.data[(i0+3)*w+j0 : (i0+3)*w+j0+4 : (i0+3)*w+j0+4]
	crow[0] += c30
	crow[1] += c31
	crow[2] += c32
	crow[3] += c33
}

// mulEdge handles the tile remainders (rows [i0, i1), columns [j0, j1))
// with the i-k-j loop over fused Axpy updates. Panics if the operand
// shapes disagree (MulTo validates first).
func mulEdge(c, a, b *Dense, i0, i1, j0, j1 int) {
	if i0 >= i1 || j0 >= j1 {
		return
	}
	if a.cols != b.rows || c.cols != b.cols {
		panic("linalg: mulEdge operand shapes disagree")
	}
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		crow := c.Row(i)[j0:j1]
		for k, av := range arow {
			Axpy(av, b.Row(k)[j0:j1], crow)
		}
	}
}
