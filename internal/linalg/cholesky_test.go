package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(Mul(l, l.Transpose()), a) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Error("Cholesky accepted a non-square matrix")
	}
}

func TestLDLReconstructsAndUnitDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, d, err := LDL(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if l.At(i, i) != 1 {
				return false
			}
			if d[i] <= 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 { // strictly lower triangular above diag
					return false
				}
			}
		}
		ld := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ld.Set(i, j, l.At(i, j)*d[j])
			}
		}
		return MaxAbsDiff(Mul(ld, l.Transpose()), a) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUDUReconstructsAndUnitUpperTriangular(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		u, d, err := UDU(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if u.At(i, i) != 1 || d[i] <= 0 {
				return false
			}
			for j := 0; j < i; j++ {
				if u.At(i, j) != 0 { // zero below diagonal
					return false
				}
			}
		}
		return MaxAbsDiff(ReconstructUDU(u, d), a) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUDUHandComputed(t *testing.T) {
	// a = U D Uᵀ with U = [[1, .5],[0,1]], D = diag(2, 4):
	// a = [[2 + .25*4, .5*4], [.5*4, 4]] = [[3, 2],[2, 4]]
	a := NewDenseData(2, 2, []float64{3, 2, 2, 4})
	u, d, err := UDU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(u.At(0, 1), 0.5, 1e-12) {
		t.Errorf("U[0,1] = %v, want 0.5", u.At(0, 1))
	}
	if !almostEq(d[0], 2, 1e-12) || !almostEq(d[1], 4, 1e-12) {
		t.Errorf("d = %v, want [2 4]", d)
	}
}

func TestUDUOnDiagonalMatrix(t *testing.T) {
	a := NewDenseData(3, 3, []float64{2, 0, 0, 0, 5, 0, 0, 0, 7})
	u, d, err := UDU(a)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(u, Identity(3)) != 0 {
		t.Error("UDU of diagonal matrix should give U = I")
	}
	if d[0] != 2 || d[1] != 5 || d[2] != 7 {
		t.Errorf("d = %v", d)
	}
}

func TestSolveTriangularAndSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MulVec(a, x)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				t.Fatalf("trial %d: SolveSPD[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 6)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(Mul(a, inv), Identity(6)) > 1e-8 {
		t.Error("a·a⁻¹ != I")
	}
	if !inv.IsSymmetric(1e-12) {
		t.Error("InverseSPD result is not symmetric")
	}
}

func TestInverseGeneral(t *testing.T) {
	a := NewDenseData(3, 3, []float64{0, 2, 1, 1, 0, 0, 0, 1, 1})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(Mul(a, inv), Identity(3)) > 1e-10 {
		t.Error("Inverse with pivoting failed")
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); err == nil {
		t.Error("Inverse accepted a singular matrix")
	}
}

func TestInverseMatchesInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 5)
	i1, err1 := Inverse(a)
	i2, err2 := InverseSPD(a)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if MaxAbsDiff(i1, i2) > 1e-8 {
		t.Error("general and SPD inverses disagree")
	}
}

func TestSolveLowerUpperHandCase(t *testing.T) {
	l := NewDenseData(2, 2, []float64{2, 0, 1, 3})
	x := SolveLower(l, []float64{4, 7})
	if x[0] != 2 || !almostEq(x[1], 5.0/3.0, 1e-12) {
		t.Errorf("SolveLower = %v", x)
	}
	u := l.Transpose()
	y := SolveUpper(u, []float64{4, 6})
	if y[1] != 2 || y[0] != 1 {
		t.Errorf("SolveUpper = %v", y)
	}
}

func TestUDUvsLDLRelationship(t *testing.T) {
	// UDU of A equals (reversed) LDL of the reversed matrix.
	rng := rand.New(rand.NewSource(3))
	n := 5
	a := randomSPD(rng, n)
	rev := make(Permutation, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	u, du, err := UDU(a)
	if err != nil {
		t.Fatal(err)
	}
	l, dl, err := LDL(PermuteSym(a, rev))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !almostEq(du[i], dl[n-1-i], 1e-9) {
			t.Fatalf("d mismatch at %d: %v vs %v", i, du[i], dl[n-1-i])
		}
		for j := i + 1; j < n; j++ {
			if !almostEq(u.At(i, j), l.At(n-1-i, n-1-j), 1e-9) {
				t.Fatalf("U/L mismatch at (%d,%d)", i, j)
			}
		}
	}
	_ = math.Pi
}
