// Package linalg provides the dense linear-algebra substrate used by FDX:
// matrices, triangular factorizations (including the UDUᵀ "anti-Cholesky"
// factorization at the heart of the FDX autoregression estimate), linear
// solves, and a symmetric eigendecomposition. Everything is implemented on
// the standard library; matrices are row-major float64.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
// Panics if either dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (length rows*cols, row-major) without copying.
// Panics if len(data) is not rows*cols.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major storage (shared).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns a*b as a new matrix, via the blocked kernel in MulTo.
// Panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	return MulTo(NewDense(a.rows, b.cols), a, b)
}

// MulVec returns a·x as a new vector.
// Panics if a.Cols() differs from len(x).
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	y := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		y[i] = Dot(a.Row(i), x)
	}
	return y
}

// AddScaled returns a + s*b as a new matrix.
// Panics if a and b have different shapes.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: AddScaled dimension mismatch")
	}
	c := a.Clone()
	Axpy(s, b.data, c.data)
	return c
}

// Sub returns a - b as a new matrix.
func Sub(a, b *Dense) *Dense { return AddScaled(a, -1, b) }

// Scale multiplies every element of m by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
// Panics if a and b have different shapes.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	max := 0.0
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m+mᵀ)/2 in place. m must be square.
// Panics otherwise.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
