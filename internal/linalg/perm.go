package linalg

import "fmt"

// Permutation is a bijection of {0,…,n−1}: perm[i] = the original index
// placed at position i.
type Permutation []int

// IdentityPerm returns the identity permutation on n elements.
func IdentityPerm(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsValid reports whether p is a bijection of {0,…,len(p)−1}.
func (p Permutation) IsValid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// PermuteSym returns P·a·Pᵀ: element (i, j) of the result is
// a[p[i], p[j]]. a must be square with the same dimension as p; panics
// otherwise.
func PermuteSym(a *Dense, p Permutation) *Dense {
	n := a.rows
	if a.cols != n || len(p) != n {
		panic(fmt.Sprintf("linalg: PermuteSym dimension mismatch %dx%d perm %d", a.rows, a.cols, len(p)))
	}
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, a.At(p[i], p[j]))
		}
	}
	return out
}

// UnpermuteSym undoes PermuteSym: UnpermuteSym(PermuteSym(a,p), p) == a.
func UnpermuteSym(a *Dense, p Permutation) *Dense {
	return PermuteSym(a, p.Inverse())
}
