package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD returns a random symmetric positive definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	spd := Mul(a, a.Transpose())
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n)) // ensure well-conditioned
	}
	return spd
}

func TestNewDensePanicsOnBadData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("Mul result:\n%v\nwant:\n%v", c, want)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dimension mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := MulVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", y)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomDense(rng, 4, 7)
	if MaxAbsDiff(m, m.Transpose().Transpose()) != 0 {
		t.Error("transpose twice is not the identity")
	}
}

func TestTransposeProperty(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ for random matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		k := 2 + rng.Intn(5)
		m := 2 + rng.Intn(5)
		a, b := randomDense(rng, n, k), randomDense(rng, k, m)
		left := Mul(a, b).Transpose()
		right := Mul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddScaledAndSub(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	sum := AddScaled(a, 2, b)
	want := NewDenseData(2, 2, []float64{9, 8, 7, 6})
	if MaxAbsDiff(sum, want) != 0 {
		t.Errorf("AddScaled = %v", sum)
	}
	diff := Sub(a, a)
	for _, v := range diff.data {
		if v != 0 {
			t.Fatal("Sub(a,a) != 0")
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 4, 2, 1})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize gave %v", m)
	}
	if !m.IsSymmetric(0) {
		t.Error("IsSymmetric false after Symmetrize")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowIsView(t *testing.T) {
	a := NewDense(2, 2)
	a.Row(1)[0] = 5
	if a.At(1, 0) != 5 {
		t.Error("Row should be a shared view")
	}
}

func TestScale(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, -2, 3})
	a.Scale(-2)
	if a.At(0, 0) != -2 || a.At(0, 1) != 4 || a.At(0, 2) != -6 {
		t.Errorf("Scale = %v", a)
	}
}

func TestStringRendering(t *testing.T) {
	a := NewDenseData(1, 1, []float64{1.5})
	if got := a.String(); got == "" {
		t.Error("String returned empty output")
	}
}
