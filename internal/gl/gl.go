// Package gl is the "GL" baseline of the FDX paper (§5.1): Graphical Lasso
// applied directly to the raw data (integer-encoded, standardized columns)
// to obtain an undirected dependency structure, followed by a local search
// that directs edges using the same score as RFI. Unlike FDX it skips the
// tuple-pair transform, so its covariance estimate inherits the raw data's
// mean sensitivity and per-attribute domain sizes — the source of the
// higher sample complexity the paper discusses in §4.3.
package gl

import (
	"sort"

	"fdx/internal/core"
	"fdx/internal/dataset"
	"fdx/internal/glasso"
	"fdx/internal/linalg"
	"fdx/internal/stats"
)

// Options configures the GL baseline.
type Options struct {
	// Lambda is the Graphical Lasso penalty (default 0.1).
	Lambda float64
	// EdgeTol is the |Θ| threshold for keeping an undirected edge
	// (default 0.01).
	EdgeTol float64
	// MinScore is the minimum RFI score for a directed FD (default 0.3).
	MinScore float64
	// MaxLHS caps determinant sets during the local search (default 3).
	MaxLHS int
}

// defaults fills unset fields. (fdx:numeric-kernel: the exact zero value is
// the "unset" sentinel on option fields, never a computed float.)
func (o *Options) defaults() {
	if o.Lambda == 0 {
		o.Lambda = 0.1
	}
	if o.EdgeTol == 0 {
		o.EdgeTol = 0.01
	}
	if o.MinScore == 0 {
		o.MinScore = 0.3
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 3
	}
}

// Discover runs the GL baseline.
func Discover(rel *dataset.Relation, opts Options) []core.FD {
	opts.defaults()
	k := rel.NumCols()
	n := rel.NumRows()
	if k < 2 || n == 0 {
		return nil
	}

	// Integer-encode and standardize the raw data.
	data := linalg.NewDense(n, k)
	for j := 0; j < k; j++ {
		col := rel.Columns[j]
		for i := 0; i < n; i++ {
			data.Set(i, j, float64(col.Code(i))) // Missing = −1: its own level
		}
	}
	stats.Standardize(data)
	s := stats.Shrink(stats.Covariance(data), 0.05)

	res, err := glasso.Solve(s, glasso.Options{Lambda: opts.Lambda})
	if err != nil {
		return nil
	}
	theta := res.Precision

	// Undirected neighborhoods from the precision support.
	neighbors := make([][]int, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j && abs(theta.At(i, j)) > opts.EdgeTol {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}

	// Local search: for each node, greedily grow the best-scoring
	// determinant subset of its neighborhood using the RFI score.
	var fds []core.FD
	for y := 0; y < k; y++ {
		nb := neighbors[y]
		if len(nb) == 0 {
			continue
		}
		lhs, score := greedyDetset(rel, y, nb, opts.MaxLHS)
		if score >= opts.MinScore && len(lhs) > 0 {
			fd := core.FD{LHS: lhs, RHS: y, Score: score}
			fd.Normalize()
			fds = append(fds, fd)
		}
	}
	core.SortFDs(fds)
	return fds
}

// greedyDetset grows a determinant set from the candidate neighborhood,
// adding the attribute that most improves the RFI score until no addition
// helps or the cap is reached.
func greedyDetset(rel *dataset.Relation, y int, candidates []int, maxLHS int) ([]int, float64) {
	var current []int
	bestScore := 0.0
	remaining := append([]int(nil), candidates...)
	for len(current) < maxLHS && len(remaining) > 0 {
		bestIdx := -1
		bestNext := bestScore
		for i, c := range remaining {
			trial := append(append([]int(nil), current...), c)
			score := scoreSet(rel, trial, y)
			if score > bestNext {
				bestNext = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		current = append(current, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		bestScore = bestNext
	}
	sort.Ints(current)
	return current, bestScore
}

// scoreSet computes the RFI score of X→Y on the relation.
func scoreSet(rel *dataset.Relation, x []int, y int) float64 {
	seqs := make([][]int, len(x))
	for i, a := range x {
		seqs[i] = codes(rel.Columns[a])
	}
	joint := stats.JointLabels(seqs...)
	c := stats.NewContingency(joint, codes(rel.Columns[y]))
	return stats.ReliableFractionOfInformation(c)
}

func codes(col *dataset.Column) []int {
	out := make([]int, col.Len())
	for i := range out {
		out[i] = int(col.Code(i))
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
