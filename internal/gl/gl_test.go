package gl

import (
	"math/rand"
	"strconv"
	"testing"

	"fdx/internal/core"
	"fdx/internal/dataset"
)

func relFromCodes(rows [][]int, names ...string) *dataset.Relation {
	r := dataset.New("t", names...)
	for _, row := range rows {
		s := make([]string, len(row))
		for j, v := range row {
			s[j] = strconv.Itoa(v)
		}
		r.AppendRow(s)
	}
	return r
}

func edgeSet(fds []core.FD) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, fd := range fds {
		for _, e := range fd.Edges() {
			out[e] = true
		}
	}
	return out
}

func TestGLRecoversMonotoneDependency(t *testing.T) {
	// GL works on integer codes, so use a dependency that is monotone in
	// the code space: b = a (same dictionary order), c independent.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 800)
	for i := range rows {
		a := rng.Intn(8)
		rows[i] = []int{a, a, rng.Intn(5)}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	fds := Discover(rel, Options{})
	edges := edgeSet(fds)
	if !edges[[2]int{0, 1}] && !edges[[2]int{1, 0}] {
		t.Errorf("a—b dependency not found: %v", fds)
	}
	if edges[[2]int{2, 0}] || edges[[2]int{0, 2}] || edges[[2]int{2, 1}] || edges[[2]int{1, 2}] {
		t.Errorf("independent attribute linked: %v", fds)
	}
}

func TestGLScoresGateWeakEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]int, 400)
	for i := range rows {
		rows[i] = []int{rng.Intn(5), rng.Intn(5)}
	}
	rel := relFromCodes(rows, "a", "b")
	if fds := Discover(rel, Options{}); len(fds) != 0 {
		t.Errorf("independent data produced FDs: %v", fds)
	}
}

func TestGLDegenerate(t *testing.T) {
	if fds := Discover(dataset.New("t"), Options{}); fds != nil {
		t.Error("empty relation")
	}
	rel := relFromCodes([][]int{{0}}, "a")
	if fds := Discover(rel, Options{}); fds != nil {
		t.Error("single column")
	}
}

func TestGreedyDetset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := make([][]int, 4)
	for i := range tab {
		tab[i] = make([]int, 4)
		for j := range tab[i] {
			tab[i][j] = rng.Intn(16)
		}
	}
	rows := make([][]int, 600)
	for i := range rows {
		a, b := rng.Intn(4), rng.Intn(4)
		rows[i] = []int{a, b, tab[a][b]}
	}
	rel := relFromCodes(rows, "a", "b", "c")
	lhs, score := greedyDetset(rel, 2, []int{0, 1}, 3)
	if len(lhs) != 2 || score < 0.8 {
		t.Errorf("greedyDetset = %v score %v, want both attributes", lhs, score)
	}
}
