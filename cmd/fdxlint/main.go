// Command fdxlint runs the fdx static-analysis suite (internal/analysis)
// over the module: it loads, parses, and type-checks every package with the
// standard library toolchain only, applies the project analyzers, honors
// //fdx:lint-ignore suppressions, and prints file:line:col diagnostics.
// It exits non-zero when any finding (or type error) survives.
//
// Usage:
//
//	fdxlint [-list] [-analyzers a,b,c] [-dir path] [packages]
//
// The package pattern is accepted for familiarity (`fdxlint ./...`), but
// the tool always lints from the module root: partial lints hide exactly
// the cross-package drift (an unvalidated kernel, a nondeterministic map
// walk) the suite exists to catch. Naming a sub-tree restricts *reporting*
// to packages under it.
//
// -dir lints one directory as a standalone package, bypassing the module
// walk. That is how the analyzer fixtures under testdata (which the walk
// deliberately skips) are linted: fdxlint -dir internal/analysis/testdata/src/floatcmp.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fdx/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("dir", "", "lint a single directory as a standalone package instead of the module")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fdxlint [-list] [-analyzers a,b,c] [-dir path] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	if *dir != "" {
		pkg, err := analysis.LoadDir(*dir, filepath.Base(*dir))
		if err != nil {
			fatal(err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	} else {
		pkgs, err = analysis.LoadModule(cwd)
		if err != nil {
			fatal(err)
		}
		pkgs = filterPackages(pkgs, cwd, flag.Args())
	}

	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			failed = true
			fmt.Printf("%v [typecheck]\n", terr)
		}
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		failed = true
		fmt.Println(rel(cwd, d))
	}
	if failed {
		os.Exit(1)
	}
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		fatal(fmt.Errorf("unknown analyzers %s (see fdxlint -list)", strings.Join(unknown, ", ")))
	}
	return out
}

// filterPackages narrows reporting to packages under the directories named
// by the patterns. "./..." (and no patterns at all) keeps everything.
func filterPackages(pkgs []*analysis.Package, cwd string, patterns []string) []*analysis.Package {
	var roots []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return pkgs
		}
		p = strings.TrimSuffix(p, "/...")
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		roots = append(roots, filepath.Clean(p))
	}
	if len(roots) == 0 {
		return pkgs
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, root := range roots {
			if pkg.Dir == root || strings.HasPrefix(pkg.Dir, root+string(filepath.Separator)) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// rel shortens the diagnostic's file name to be cwd-relative for readability.
func rel(cwd string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdxlint:", err)
	os.Exit(2)
}
