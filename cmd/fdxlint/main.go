// Command fdxlint runs the fdx static-analysis suite (internal/analysis)
// over the module: it loads, parses, and type-checks every package with the
// standard library toolchain only, builds the module call graph for the
// interprocedural analyzers, applies the project analyzers, honors
// //fdx:lint-ignore suppressions, and prints file:line:col diagnostics.
// It exits non-zero when any un-baselined finding (or type error) survives.
//
// Usage:
//
//	fdxlint [-list] [-analyzers a,b,c] [-disable a,b] [-tests] [-json]
//	        [-baseline file] [-write-baseline] [-ratchet] [-dir path] [packages]
//
// The package pattern is accepted for familiarity (`fdxlint ./...`), but
// the tool always lints from the module root: partial lints hide exactly
// the cross-package drift (an unvalidated kernel, a leaked bare error) the
// suite exists to catch. Naming a sub-tree restricts *reporting* to
// packages under it.
//
// -tests additionally loads _test.go files: in-package test files join
// their package, external test packages (package foo_test) are linted as
// separate packages. Test declarations are linted but never act as
// boundary/pipeline roots for the interprocedural analyzers.
//
// -baseline names a committed JSON file of grandfathered findings: findings
// matching a baseline entry (by analyzer, file, and message) do not fail
// the run, new findings do. -write-baseline regenerates the file from the
// current findings. -ratchet additionally fails when baseline entries no
// longer match anything — the debt shrank, so the baseline must be
// re-committed, keeping it monotonically decreasing.
//
// -json emits the machine-readable report (findings, type errors, baseline
// accounting) on stdout instead of text diagnostics.
//
// -dir lints one directory as a standalone package, bypassing the module
// walk. That is how the analyzer fixtures under testdata (which the walk
// deliberately skips) are linted: fdxlint -dir internal/analysis/testdata/src/floatcmp.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fdx/internal/analysis"
)

// finding is one diagnostic in the JSON report, with a cwd-relative file.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`

	baselined bool
}

// report is the -json output document.
type report struct {
	Findings   []finding `json:"findings"`
	TypeErrors []string  `json:"type_errors,omitempty"`
	// Baselined counts findings matched (and absorbed) by the baseline.
	Baselined int `json:"baselined,omitempty"`
	// Stale lists baseline entries that matched nothing: debt that has been
	// paid down and should be removed with -write-baseline.
	Stale []string `json:"stale_baseline_entries,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	dir := flag.String("dir", "", "lint a single directory as a standalone package instead of the module")
	tests := flag.Bool("tests", false, "also load and lint _test.go files")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline file from the current findings and exit")
	ratchet := flag.Bool("ratchet", false, "fail when baseline entries no longer match any finding (the baseline must shrink with the debt)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: fdxlint [-list] [-analyzers a,b,c] [-disable a,b] [-tests] [-json] [-baseline file] [-write-baseline] [-ratchet] [-dir path] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}
	if *disable != "" {
		analyzers = dropAnalyzers(analyzers, *disable)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	// Findings are reported relative to the module root (falling back to the
	// cwd in -dir mode), so baseline keys do not depend on which directory
	// fdxlint was invoked from.
	base := cwd
	var pkgs []*analysis.Package
	if *dir != "" {
		pkg, err := analysis.LoadDir(*dir, filepath.Base(*dir))
		if err != nil {
			fatal(err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	} else {
		load := analysis.LoadModule
		if *tests {
			load = analysis.LoadModuleTests
		}
		pkgs, err = load(cwd)
		if err != nil {
			fatal(err)
		}
		base = moduleRoot(cwd)
	}
	// The whole module is always analyzed (the interprocedural analyzers
	// need every boundary root and callee); package patterns only narrow
	// what is reported.
	keep := reportFilter(cwd, flag.Args())

	rep := report{}
	for _, pkg := range pkgs {
		if !keep(pkg.Dir) {
			continue
		}
		for _, terr := range pkg.TypeErrors {
			rep.TypeErrors = append(rep.TypeErrors, fmt.Sprint(terr))
		}
	}
	for _, d := range analysis.Run(pkgs, analyzers) {
		if !keep(filepath.Dir(d.Pos.Filename)) {
			continue
		}
		rep.Findings = append(rep.Findings, finding{
			Analyzer: d.Analyzer,
			File:     relPath(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}

	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = "lint-baseline.json"
		}
		if err := saveBaseline(path, rep.Findings); err != nil {
			fatal(err)
		}
		fmt.Printf("fdxlint: wrote %d baseline entries to %s\n", len(rep.Findings), path)
		return
	}

	newFindings := len(rep.Findings)
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		newFindings = 0
		for i := range rep.Findings {
			f := &rep.Findings[i]
			k := baselineKey(f.Analyzer, f.File, f.Message)
			if base[k] > 0 {
				base[k]--
				f.baselined = true
				rep.Baselined++
			} else {
				newFindings++
			}
		}
		//fdx:lint-ignore maporder stale entries are sorted immediately below
		for k, left := range base {
			for ; left > 0; left-- {
				rep.Stale = append(rep.Stale, k)
			}
		}
		sort.Strings(rep.Stale)
	}

	failed := len(rep.TypeErrors) > 0 || newFindings > 0 || (*ratchet && len(rep.Stale) > 0)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		for _, terr := range rep.TypeErrors {
			fmt.Printf("%s [typecheck]\n", terr)
		}
		for _, f := range rep.Findings {
			suffix := ""
			if f.baselined {
				suffix = " (baselined)"
			}
			fmt.Printf("%s:%d:%d: [%s] %s%s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message, suffix)
		}
		for _, k := range rep.Stale {
			fmt.Printf("stale baseline entry: %s\n", k)
		}
		if len(rep.Stale) > 0 && *ratchet {
			fmt.Println("fdxlint: the baseline has shrunk; re-commit it with -write-baseline")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// baselineEntry is one grandfathered finding class. Line numbers are
// deliberately absent: unrelated edits move findings around, and the
// baseline should only change when the debt itself does.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count allows several identical findings in one file.
	Count int `json:"count"`
}

type baselineDoc struct {
	Comment string          `json:"comment,omitempty"`
	Entries []baselineEntry `json:"entries"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\t" + filepath.ToSlash(file) + "\t" + message
}

// loadBaseline reads the baseline into a multiset of allowances.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	out := map[string]int{}
	for _, e := range doc.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		out[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	return out, nil
}

// saveBaseline writes the findings as a sorted, deduplicated baseline.
func saveBaseline(path string, findings []finding) error {
	counts := map[baselineEntry]int{}
	for _, f := range findings {
		counts[baselineEntry{Analyzer: f.Analyzer, File: filepath.ToSlash(f.File), Message: f.Message}]++
	}
	doc := baselineDoc{
		Comment: "grandfathered fdxlint findings; regenerate with `go run ./cmd/fdxlint -write-baseline -baseline <this file>`",
	}
	//fdx:lint-ignore maporder entries are sorted immediately below before writing
	for e, n := range counts {
		e.Count = n
		doc.Entries = append(doc.Entries, e)
	}
	sort.Slice(doc.Entries, func(i, j int) bool {
		a, b := doc.Entries[i], doc.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		fatal(fmt.Errorf("unknown analyzers %s (see fdxlint -list)", strings.Join(unknown, ", ")))
	}
	return out
}

// dropAnalyzers removes the named analyzers; unknown names are an error so a
// typo cannot silently disable nothing.
func dropAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	drop := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		drop[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if drop[a.Name] {
			delete(drop, a.Name)
			continue
		}
		out = append(out, a)
	}
	if len(drop) > 0 {
		unknown := make([]string, 0, len(drop))
		for n := range drop {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		fatal(fmt.Errorf("unknown analyzers %s (see fdxlint -list)", strings.Join(unknown, ", ")))
	}
	return out
}

// reportFilter narrows reporting to directories under the patterns' roots.
// "./..." (and no patterns at all) keeps everything.
func reportFilter(cwd string, patterns []string) func(dir string) bool {
	var roots []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return func(string) bool { return true }
		}
		p = strings.TrimSuffix(p, "/...")
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		roots = append(roots, filepath.Clean(p))
	}
	if len(roots) == 0 {
		return func(string) bool { return true }
	}
	return func(dir string) bool {
		for _, root := range roots {
			if dir == root || strings.HasPrefix(dir, root+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}

// relPath shortens a file name to be base-relative for readability and for
// checkout-independent baseline keys.
func relPath(base, name string) string {
	if r, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return name
}

// moduleRoot walks up from dir to the nearest directory containing go.mod,
// falling back to dir itself outside a module.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdxlint:", err)
	os.Exit(2)
}
