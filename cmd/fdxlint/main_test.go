package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

// TestMain builds the fdxlint binary once so the tests can observe real
// exit codes (a `go run` wrapper reports its own status, not the child's).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fdxlint")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "fdxlint")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fdxlint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes fdxlint and returns its combined output and exit code.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	return runIn(t, "", args...)
}

// runIn is run with an explicit working directory.
func runIn(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("fdxlint failed to start: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// writeTempModule lays out a throwaway Go module for end-to-end CLI tests.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const demoGoMod = "module demo\n\ngo 1.21\n"

// demoDirty has one floatcmp finding; demoClean is the paid-down version.
const demoDirty = `package demo

// Eq reports equality.
func Eq(a, b float64) bool { return a == b }
`

const demoClean = `package demo

// Eq reports equality within 1e-9.
func Eq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
`

func TestFixtureDirExitsNonZero(t *testing.T) {
	// errwrap is absent: its fixture is a package tree (it imports a local
	// fdxerr subpackage), which -dir's standalone load cannot resolve; it is
	// covered by the analysis package's TestErrWrap instead.
	for _, fixture := range []string{"floatcmp", "maporder", "goroutinecapture", "nakedpanic", "dimcheck", "spanleak", "ctxflow", "detsource", "hotalloc"} {
		out, code := run(t, "-dir", "../../internal/analysis/testdata/src/"+fixture)
		if code != 1 {
			t.Errorf("fdxlint -dir %s: exit %d, want 1\n%s", fixture, code, out)
		}
		if !strings.Contains(out, "["+fixture+"]") {
			t.Errorf("fdxlint -dir %s: output has no [%s] finding\n%s", fixture, fixture, out)
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	out, code := run(t, "-analyzers", "nope")
	if code != 2 {
		t.Errorf("exit %d, want 2\n%s", code, out)
	}
}

func TestListAnalyzers(t *testing.T) {
	out, code := run(t, "-list")
	if code != 0 {
		t.Fatalf("fdxlint -list: exit %d\n%s", code, out)
	}
	for _, name := range []string{"floatcmp", "maporder", "goroutinecapture", "nakedpanic", "dimcheck", "spanleak", "errwrap", "ctxflow", "detsource", "hotalloc"} {
		if !strings.Contains(out, name) {
			t.Errorf("fdxlint -list output is missing %s:\n%s", name, out)
		}
	}
}

func TestDisableAnalyzer(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": demoGoMod, "demo.go": demoDirty})
	if out, code := runIn(t, dir, "./..."); code != 1 || !strings.Contains(out, "[floatcmp]") {
		t.Fatalf("baseline run: exit %d, want 1 with a floatcmp finding\n%s", code, out)
	}
	if out, code := runIn(t, dir, "-disable", "floatcmp", "./..."); code != 0 {
		t.Errorf("-disable floatcmp: exit %d, want 0\n%s", code, out)
	}
	if out, code := runIn(t, dir, "-disable", "nope", "./..."); code != 2 {
		t.Errorf("-disable nope: exit %d, want 2\n%s", code, out)
	}
}

func TestJSONReport(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": demoGoMod, "demo.go": demoDirty})
	out, code := runIn(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json: exit %d, want 1\n%s", code, out)
	}
	var rep struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("-json findings = %d, want 1\n%s", len(rep.Findings), out)
	}
	f := rep.Findings[0]
	if f.Analyzer != "floatcmp" || f.File != "demo.go" || f.Line == 0 || f.Message == "" {
		t.Errorf("-json finding = %+v, want a located floatcmp finding in demo.go", f)
	}
}

func TestBaselineLifecycle(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": demoGoMod, "demo.go": demoDirty})

	// Grandfather the existing debt.
	if out, code := runIn(t, dir, "-baseline", "b.json", "-write-baseline", "./..."); code != 0 {
		t.Fatalf("-write-baseline: exit %d\n%s", code, out)
	}
	out, code := runIn(t, dir, "-baseline", "b.json", "./...")
	if code != 0 {
		t.Fatalf("baselined run: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "(baselined)") {
		t.Errorf("baselined run output does not mark the grandfathered finding:\n%s", out)
	}

	// A new finding alongside the grandfathered one still fails.
	extra := demoDirty + "\n// Ne reports inequality.\nfunc Ne(a, b float64) bool { return a != b }\n"
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runIn(t, dir, "-baseline", "b.json", "./..."); code != 1 {
		t.Errorf("new finding over baseline: exit %d, want 1\n%s", code, out)
	}

	// Paying the debt down leaves a stale entry: fine normally, a failure
	// under -ratchet until the baseline is rewritten.
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(demoClean), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runIn(t, dir, "-baseline", "b.json", "./...")
	if code != 0 || !strings.Contains(out, "stale baseline entry") {
		t.Errorf("stale baseline without -ratchet: exit %d, want 0 with a stale notice\n%s", code, out)
	}
	if out, code := runIn(t, dir, "-baseline", "b.json", "-ratchet", "./..."); code != 1 {
		t.Errorf("stale baseline with -ratchet: exit %d, want 1\n%s", code, out)
	}
	if out, code := runIn(t, dir, "-baseline", "b.json", "-write-baseline", "./..."); code != 0 {
		t.Fatalf("rewriting baseline: exit %d\n%s", code, out)
	}
	if out, code := runIn(t, dir, "-baseline", "b.json", "-ratchet", "./..."); code != 0 {
		t.Errorf("clean module, fresh baseline, -ratchet: exit %d, want 0\n%s", code, out)
	}
}

func TestTestsMode(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod":  demoGoMod,
		"demo.go": demoClean,
		"demo_test.go": `package demo

import "testing"

func TestKeys(t *testing.T) {
	m := map[string]int{"a": 1}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if len(out) != 1 {
		t.Fatal(out)
	}
}
`,
	})
	if out, code := runIn(t, dir, "./..."); code != 0 {
		t.Fatalf("without -tests: exit %d, want 0\n%s", code, out)
	}
	out, code := runIn(t, dir, "-tests", "./...")
	if code != 1 {
		t.Fatalf("with -tests: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[maporder]") || !strings.Contains(out, "demo_test.go") {
		t.Errorf("with -tests: want a maporder finding in demo_test.go\n%s", out)
	}
}

func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint takes several seconds")
	}
	out, code := run(t, "./...")
	if code != 0 {
		t.Errorf("fdxlint ./... on the repo: exit %d, want 0\n%s", code, out)
	}
}
