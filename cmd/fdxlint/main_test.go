package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

// TestMain builds the fdxlint binary once so the tests can observe real
// exit codes (a `go run` wrapper reports its own status, not the child's).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fdxlint")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "fdxlint")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fdxlint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes fdxlint and returns its combined output and exit code.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("fdxlint failed to start: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestFixtureDirExitsNonZero(t *testing.T) {
	for _, fixture := range []string{"floatcmp", "maporder", "goroutinecapture", "nakedpanic", "dimcheck"} {
		out, code := run(t, "-dir", "../../internal/analysis/testdata/src/"+fixture)
		if code != 1 {
			t.Errorf("fdxlint -dir %s: exit %d, want 1\n%s", fixture, code, out)
		}
		if !strings.Contains(out, "["+fixture+"]") {
			t.Errorf("fdxlint -dir %s: output has no [%s] finding\n%s", fixture, fixture, out)
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	out, code := run(t, "-analyzers", "nope")
	if code != 2 {
		t.Errorf("exit %d, want 2\n%s", code, out)
	}
}

func TestListAnalyzers(t *testing.T) {
	out, code := run(t, "-list")
	if code != 0 {
		t.Fatalf("fdxlint -list: exit %d\n%s", code, out)
	}
	for _, name := range []string{"floatcmp", "maporder", "goroutinecapture", "nakedpanic", "dimcheck"} {
		if !strings.Contains(out, name) {
			t.Errorf("fdxlint -list output is missing %s:\n%s", name, out)
		}
	}
}

func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint takes several seconds")
	}
	out, code := run(t, "./...")
	if code != 0 {
		t.Errorf("fdxlint ./... on the repo: exit %d, want 0\n%s", code, out)
	}
}
