package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"fdx"
	"fdx/internal/obs"
	"fdx/internal/obs/flight"
	"fdx/internal/serve"
)

// The flight subcommand reads the black-box captures written by
// `fdxd -flight-dir` and `fdx stream -flight-dir`:
//
//	fdx flight decode  [-format json|csv] DIR|FILE...
//	fdx flight tail    [-every 1s] [-n N] DIR
//	fdx flight summary DIR|FILE...
//
// decode dumps every sample; tail follows a live capture directory;
// summary prints the postmortem view (capture window, counter deltas,
// gauge ranges). A corrupt capture still yields everything decoded before
// the damage, with a warning on stderr and exit code 3.

func runFlight(args []string) int {
	if len(args) < 1 {
		return flightUsage()
	}
	switch args[0] {
	case "decode":
		return runFlightDecode(args[1:])
	case "tail":
		return runFlightTail(args[1:])
	case "summary":
		return runFlightSummary(args[1:])
	default:
		return flightUsage()
	}
}

func flightUsage() int {
	fmt.Fprintln(os.Stderr, "usage: fdx flight decode  [-format json|csv] DIR|FILE...")
	fmt.Fprintln(os.Stderr, "       fdx flight tail    [-every 1s] [-n N] DIR")
	fmt.Fprintln(os.Stderr, "       fdx flight summary DIR|FILE...")
	return 2
}

// loadCapture decodes every argument (capture directory or single .ftdc
// file) oldest-first into one sample sequence. A corrupt capture returns
// the healthy prefix alongside the error, so postmortems still see the
// history leading up to the damage.
func loadCapture(paths []string) ([]flight.Sample, error) {
	var (
		samples  []flight.Sample
		firstErr error
	)
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return samples, fmt.Errorf("%w: %w", err, fdx.ErrBadInput)
		}
		var s []flight.Sample
		if info.IsDir() {
			s, err = flight.DecodeDir(p)
		} else {
			s, err = flight.DecodeFile(p)
		}
		samples = append(samples, s...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return samples, firstErr
}

// captureExit maps a capture-read error onto the exit-code taxonomy:
// corrupt frames are 3 (like corrupt checkpoints), everything else is bad
// input. The decoded prefix has already been printed either way.
func captureExit(err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintln(os.Stderr, "fdx: flight:", err)
	if errors.Is(err, flight.ErrCorrupt) {
		return 3
	}
	return exitCode(err)
}

func runFlightDecode(args []string) int {
	fs := flag.NewFlagSet("fdx flight decode", flag.ExitOnError)
	format := fs.String("format", "json", "output format: json (one object per sample) or csv")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return flightUsage()
	}
	samples, err := loadCapture(fs.Args())
	switch *format {
	case "json":
		for _, s := range samples {
			if werr := writeSampleJSON(os.Stdout, s); werr != nil {
				return fail(werr)
			}
		}
	case "csv":
		if werr := writeSamplesCSV(samples); werr != nil {
			return fail(werr)
		}
	default:
		fmt.Fprintf(os.Stderr, "fdx: flight: unknown -format %q (want json or csv)\n", *format)
		return 2
	}
	return captureExit(err)
}

// writeSampleJSON emits one sample as a single JSON line; map keys are
// the series names (encoding/json sorts them, so output is stable).
func writeSampleJSON(w *os.File, s flight.Sample) error {
	values := make(map[string]json.Number, len(s.Series))
	for _, sr := range s.Series {
		values[sr.Name] = json.Number(formatSeries(sr))
	}
	line, err := json.Marshal(struct {
		Time   time.Time              `json:"time"`
		Series map[string]json.Number `json:"series"`
	}{s.Time, values})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", line)
	return err
}

// writeSamplesCSV emits a header of the union of series names (sorted)
// and one row per sample; series absent from a sample leave empty cells.
func writeSamplesCSV(samples []flight.Sample) error {
	names := map[string]bool{}
	for _, s := range samples {
		for _, sr := range s.Series {
			names[sr.Name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	header := append([]string{"time"}, sorted...)
	col := make(map[string]int, len(header))
	for i, n := range header {
		col[n] = i
	}
	w := csv.NewWriter(os.Stdout)
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, s := range samples {
		for i := range row {
			row[i] = ""
		}
		row[0] = s.Time.Format(time.RFC3339Nano)
		for _, sr := range s.Series {
			row[col[sr.Name]] = formatSeries(sr)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// formatSeries renders a series value: counters as integers, gauges in
// shortest-round-trip float form.
func formatSeries(sr obs.Series) string {
	if sr.Kind == obs.KindGauge {
		return strconv.FormatFloat(sr.Number(), 'g', -1, 64)
	}
	return strconv.FormatUint(sr.Raw, 10)
}

func runFlightTail(args []string) int {
	fs := flag.NewFlagSet("fdx flight tail", flag.ExitOnError)
	every := fs.Duration("every", time.Second, "poll interval")
	count := fs.Int("n", 0, "exit after printing N samples (0 = follow until interrupted)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return flightUsage()
	}
	dir := fs.Arg(0)
	sigs := serve.NotifyDrain()
	defer sigs.Stop()
	var last time.Time
	printed := 0
	for {
		samples, err := loadCapture([]string{dir})
		if err != nil && !errors.Is(err, flight.ErrCorrupt) {
			return captureExit(err)
		}
		for _, s := range samples {
			if !s.Time.After(last) {
				continue
			}
			last = s.Time
			if werr := writeSampleJSON(os.Stdout, s); werr != nil {
				return fail(werr)
			}
			if printed++; *count > 0 && printed >= *count {
				return 0
			}
		}
		select {
		case <-sigs.Interrupt():
			return 0
		case <-sigs.Drain():
			return 0
		case <-time.After(*every):
		}
	}
}

func runFlightSummary(args []string) int {
	fs := flag.NewFlagSet("fdx flight summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() < 1 {
		return flightUsage()
	}
	samples, err := loadCapture(fs.Args())
	if len(samples) == 0 {
		fmt.Println("capture: no samples")
		return captureExit(err)
	}
	first, lastS := samples[0], samples[len(samples)-1]
	window := lastS.Time.Sub(first.Time)
	fmt.Printf("capture: %d samples  %s → %s  (%v)\n",
		len(samples), first.Time.Format(time.RFC3339), lastS.Time.Format(time.RFC3339), window.Round(time.Millisecond))

	// Per-series aggregates over the whole capture. A series' kind is
	// stable within a capture; first/min/max track the window.
	type agg struct {
		kind          obs.SeriesKind
		first, last   float64
		min, max      float64
		seen          bool
		firstRaw, raw uint64
	}
	stats := map[string]*agg{}
	var names []string
	for _, s := range samples {
		for _, sr := range s.Series {
			a := stats[sr.Name]
			if a == nil {
				a = &agg{kind: sr.Kind}
				stats[sr.Name] = a
				names = append(names, sr.Name)
			}
			v := sr.Number()
			if !a.seen {
				a.seen = true
				a.first, a.min, a.max = v, v, v
				a.firstRaw = sr.Raw
			}
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			a.last, a.raw = v, sr.Raw
		}
	}
	sort.Strings(names)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Println("\ncounters (delta over capture):")
	secs := window.Seconds()
	for _, n := range names {
		a := stats[n]
		if a.kind != obs.KindCounter {
			continue
		}
		delta := a.raw - a.firstRaw
		line := fmt.Sprintf("  %-*s  +%d", width, n, delta)
		if secs > 0 && delta > 0 {
			line += fmt.Sprintf("  (%.1f/s)", float64(delta)/secs)
		}
		fmt.Println(line)
	}
	fmt.Println("\ngauges (min / max / last):")
	for _, n := range names {
		a := stats[n]
		if a.kind != obs.KindGauge {
			continue
		}
		fmt.Printf("  %-*s  %g / %g / %g\n", width, n, a.min, a.max, a.last)
	}
	return captureExit(err)
}
