package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fdx"
	"fdx/internal/obs"
	"fdx/internal/obs/flight"
	"fdx/internal/serve"
)

// preserveFlightCapture copies the capture directory's ring files into
// $FDX_FLIGHT_ARTIFACT_DIR/<test-name> when the test fails, so CI can
// upload the black box of a failed chaos run for postmortem with
// `fdx flight`.
func preserveFlightCapture(t *testing.T, dir string) {
	t.Cleanup(func() {
		dst := os.Getenv("FDX_FLIGHT_ARTIFACT_DIR")
		if dst == "" || !t.Failed() {
			return
		}
		out := filepath.Join(dst, strings.ReplaceAll(t.Name(), "/", "_"))
		files, err := flight.Files(dir)
		if err == nil {
			err = os.MkdirAll(out, 0o755)
		}
		if err != nil {
			t.Logf("preserving flight capture: %v", err)
			return
		}
		for _, f := range files {
			data, rerr := os.ReadFile(f)
			if rerr == nil {
				rerr = os.WriteFile(filepath.Join(out, filepath.Base(f)), data, 0o644)
			}
			if rerr != nil {
				t.Logf("preserving flight capture %s: %v", f, rerr)
			}
		}
		t.Logf("flight capture preserved in %s", out)
	})
}

// captureRun invokes an in-process subcommand entry point with stdout
// redirected, returning what it printed and its exit code.
func captureRun(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	r.Close()
	return sb.String(), code
}

// writeTestCapture records a small known capture: counter 0 → 3 → 7,
// gauge 2.5 → 4.5, across four samples (start, two explicit, close). The
// series are registered before Start, as a real host would, so the
// summary's delta spans the whole window.
func writeTestCapture(t *testing.T, dir string) {
	t.Helper()
	m := fdx.NewMetrics()
	m.Counter(obs.MRowsAbsorbed)
	m.Gauge(obs.MServeSessions).Set(2.5)
	rec, err := flight.Start(flight.Options{Dir: dir, Interval: time.Hour, Metrics: m})
	if err != nil {
		t.Fatalf("flight.Start: %v", err)
	}
	m.Counter(obs.MRowsAbsorbed).Add(3)
	rec.SampleNow()
	m.Counter(obs.MRowsAbsorbed).Add(4)
	m.Gauge(obs.MServeSessions).Set(4.5)
	rec.SampleNow()
	if err := rec.Close(); err != nil {
		t.Fatalf("flight.Close: %v", err)
	}
}

// TestFlightDecodeJSON: `fdx flight decode` emits one JSON object per
// sample with the recorded series values.
func TestFlightDecodeJSON(t *testing.T) {
	dir := t.TempDir()
	writeTestCapture(t, dir)
	out, code := captureRun(t, func() int { return runFlight([]string{"decode", dir}) })
	if code != 0 {
		t.Fatalf("decode: exit %d\n%s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // start sample + 2 × SampleNow + final on Close
		t.Fatalf("decode printed %d lines, want 4:\n%s", len(lines), out)
	}
	var sample struct {
		Time   time.Time              `json:"time"`
		Series map[string]json.Number `json:"series"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sample); err != nil {
		t.Fatalf("last line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if got := sample.Series[obs.MRowsAbsorbed]; got != "7" {
		t.Errorf("final %s = %s, want 7", obs.MRowsAbsorbed, got)
	}
	if got := sample.Series[obs.MServeSessions]; got != "4.5" {
		t.Errorf("final %s = %s, want 4.5", obs.MServeSessions, got)
	}
	if _, ok := sample.Series["go_goroutines"]; !ok {
		t.Errorf("runtime series missing from decoded sample: %v", sample.Series)
	}
	if sample.Time.IsZero() {
		t.Error("sample time missing")
	}
}

// TestFlightDecodeCSV: the csv format has a time column plus one sorted
// column per series, empty cells for absent series.
func TestFlightDecodeCSV(t *testing.T) {
	dir := t.TempDir()
	writeTestCapture(t, dir)
	out, code := captureRun(t, func() int { return runFlight([]string{"decode", "-format", "csv", dir}) })
	if code != 0 {
		t.Fatalf("decode -format csv: exit %d\n%s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 samples
		t.Fatalf("csv has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "time,") || !strings.Contains(lines[0], obs.MRowsAbsorbed) {
		t.Errorf("csv header missing columns: %s", lines[0])
	}
}

// TestFlightSummary: the postmortem view reports the capture window,
// counter deltas, and gauge ranges.
func TestFlightSummary(t *testing.T) {
	dir := t.TempDir()
	writeTestCapture(t, dir)
	out, code := captureRun(t, func() int { return runFlight([]string{"summary", dir}) })
	if code != 0 {
		t.Fatalf("summary: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "capture: 4 samples") {
		t.Errorf("summary window line wrong:\n%s", out)
	}
	if !strings.Contains(out, obs.MRowsAbsorbed) || !strings.Contains(out, "+7") {
		t.Errorf("summary missing counter delta:\n%s", out)
	}
	if !strings.Contains(out, obs.MServeSessions) || !strings.Contains(out, "2.5 / 4.5 / 4.5") {
		t.Errorf("summary missing gauge range:\n%s", out)
	}
}

// TestFlightTailBounded: tail -n prints the first N samples then exits 0
// without waiting for an interrupt.
func TestFlightTailBounded(t *testing.T) {
	dir := t.TempDir()
	writeTestCapture(t, dir)
	out, code := captureRun(t, func() int {
		return runFlight([]string{"tail", "-every", "10ms", "-n", "2", dir})
	})
	if code != 0 {
		t.Fatalf("tail: exit %d\n%s", code, out)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 2 {
		t.Fatalf("tail -n 2 printed %d lines:\n%s", len(lines), out)
	}
}

// TestFlightDecodeCorruptExitsThree: structural damage inside a capture
// still prints the healthy prefix but exits with the corrupt-state code.
func TestFlightDecodeCorruptExitsThree(t *testing.T) {
	dir := t.TempDir()
	writeTestCapture(t, dir)
	files, err := flight.Files(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("capture files: %v (%d)", err, len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip a bit inside the final chunk's CRC-covered bytes
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := captureRun(t, func() int { return runFlight([]string{"decode", dir}) })
	if code != 3 {
		t.Fatalf("corrupt decode: exit %d, want 3\n%s", code, out)
	}
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("corrupt decode printed nothing; want the healthy prefix")
	}
}

// TestFlightUsage: missing or unknown verbs exit 2.
func TestFlightUsage(t *testing.T) {
	for _, args := range [][]string{nil, {"bogus"}, {"decode"}, {"summary"}} {
		if _, code := captureRun(t, func() int { return runFlight(args) }); code != 2 {
			t.Errorf("flight %v: exit %d, want 2", args, code)
		}
	}
}

// TestStreamFlightDirRecordsRun: `fdx stream -flight-dir` leaves a
// decodable capture whose final sample holds the stream's row counters.
func TestStreamFlightDirRecordsRun(t *testing.T) {
	dir := t.TempDir()
	fdir := filepath.Join(dir, "blackbox")
	preserveFlightCapture(t, fdir)
	ckpt := filepath.Join(dir, "state.fdx")
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-flight-dir", fdir))
	if code != 0 {
		t.Fatalf("stream -flight-dir: exit %d\n%s", code, out)
	}
	samples, err := flight.DecodeDir(fdir)
	if err != nil {
		t.Fatalf("decoding capture: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("capture is empty")
	}
	last := samples[len(samples)-1]
	if rows, ok := last.Number(obs.MRowsAbsorbed); !ok || rows <= 0 {
		t.Errorf("final sample %s = %v (ok=%v), want > 0", obs.MRowsAbsorbed, rows, ok)
	}
}

// TestShippedStreamSharedTraceID is the cross-process tracing contract: a
// sharded `fdx stream -ship -trace` run against a live fdxd handler
// produces one Chrome-trace file in which the supervisor root, the shard
// workers, and the grafted fdxd server spans all carry the same trace id —
// and the remotely discovered dependencies match the local sequential
// run bit-for-bit.
func TestShippedStreamSharedTraceID(t *testing.T) {
	sv, err := serve.New(serve.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	out, code := runStreamInProcess(t, streamArgs(filepath.Join(dir, "state.fdx"),
		"-shards", "2", "-ship", ts.URL, "-session", "trace-test", "-trace", tracePath))
	if code != 0 {
		t.Fatalf("shipped stream: exit %d\n%s", code, out)
	}
	if got, want := fdLines(out), referenceFDs(t); !equalStrings(got, want) {
		t.Errorf("remote discovery differs from sequential:\nremote: %v\nlocal:  %v", got, want)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	traceIDs := map[string]string{} // representative event name per role → trace id
	var rootID string
	for _, ev := range tf.TraceEvents {
		tid, _ := ev.Args["trace_id"].(string)
		switch {
		case ev.Name == "stream":
			rootID = tid
			traceIDs["supervisor"] = tid
		case ev.Name == "shard":
			traceIDs["worker"] = tid
		case strings.HasPrefix(ev.Name, "serve."):
			traceIDs["client"] = tid
		case strings.HasPrefix(ev.Name, "fdxd."):
			traceIDs["server"] = tid
			if remote, _ := ev.Args["remote"].(bool); !remote {
				t.Errorf("server span %q not marked remote", ev.Name)
			}
		}
	}
	if rootID == "" {
		t.Fatalf("no stream root span with a trace id in %d events", len(tf.TraceEvents))
	}
	for _, role := range []string{"supervisor", "worker", "client", "server"} {
		if got, ok := traceIDs[role]; !ok || got != rootID {
			t.Errorf("%s trace id = %q (present=%v), want %q", role, got, ok, rootID)
		}
	}
}
