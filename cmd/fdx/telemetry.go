package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"time"

	"fdx"
	"fdx/internal/obs"
	"fdx/internal/obs/flight"
)

// telemetryFlags is the observability flag block shared by both
// subcommands.
type telemetryFlags struct {
	tracePath   *string
	traceMem    *bool
	metricsAddr *string
	flightDir   *string
	flightEvery *time.Duration
	verbose     *bool
}

func addTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	return &telemetryFlags{
		tracePath:   fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)"),
		traceMem:    fs.Bool("trace-mem", false, "sample per-span allocation deltas into the trace (implies -trace sinks; slower)"),
		metricsAddr: fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)"),
		flightDir:   fs.String("flight-dir", "", "flight-recorder capture directory: sample the metrics registry + runtime stats there (see `fdx flight`)"),
		flightEvery: fs.Duration("flight-every", flight.DefaultInterval, "flight-recorder sampling interval"),
		verbose:     fs.Bool("v", false, "print live progress and a stage summary to stderr"),
	}
}

// telemetry holds the sinks built from the flags. tracer and metrics are
// nil when the corresponding flags are off; the library treats nil sinks
// as zero-overhead no-ops.
type telemetry struct {
	tracer    *fdx.Tracer
	metrics   *fdx.Metrics
	flight    *flight.Recorder
	log       *slog.Logger
	tracePath string
	verbose   bool
}

// setup builds the sinks and starts the metrics server if requested.
func (tf *telemetryFlags) setup() (*telemetry, error) {
	t := &telemetry{tracePath: *tf.tracePath, verbose: *tf.verbose}
	if t.tracePath != "" || *tf.traceMem || t.verbose {
		t.tracer = fdx.NewTracer()
		t.tracer.SetMemSampling(*tf.traceMem)
	}
	if *tf.metricsAddr != "" || t.verbose || *tf.flightDir != "" {
		t.metrics = fdx.NewMetrics()
	}
	// Structured supervisor logging mirrors fdxd: warnings always reach
	// stderr, -v turns on the per-event Info lines too.
	level := slog.LevelWarn
	if t.verbose {
		level = slog.LevelInfo
	}
	t.log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	if dir := *tf.flightDir; dir != "" {
		rec, err := flight.Start(flight.Options{
			Dir:      dir,
			Interval: *tf.flightEvery,
			Metrics:  t.metrics,
			OnError:  func(err error) { t.log.Warn("flight_recorder", "error", err.Error()) },
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %w", err, fdx.ErrBadInput)
		}
		t.flight = rec
	}
	if addr := *tf.metricsAddr; addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w: %w", err, fdx.ErrBadInput)
		}
		expvar.Publish("fdx", t.metrics)
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			t.metrics.WritePrometheus(w)
		})
		// Tests (and humans scripting around :0) parse this line to learn
		// the bound address.
		fmt.Fprintf(os.Stderr, "fdx: metrics listening on %s\n", ln.Addr())
		go http.Serve(ln, nil)
	}
	return t, nil
}

// apply threads the sinks into discovery options.
func (t *telemetry) apply(opts *fdx.Options) {
	opts.Tracer = t.tracer
	opts.Metrics = t.metrics
}

// hooks bundles the sinks for code that instruments directly (the shard
// supervisor) rather than through fdx.Options.
func (t *telemetry) hooks() obs.Hooks {
	return obs.Hooks{Tracer: t.tracer, Metrics: t.metrics}
}

// finish writes the trace file (-trace) and the stage summary (-v) after
// the run completes, and seals the flight capture with a final sample.
func (t *telemetry) finish() error {
	if t.flight != nil {
		if err := t.flight.Close(); err != nil {
			t.log.Warn("flight_recorder", "error", err.Error())
		}
		t.flight = nil
	}
	if t.verbose && t.tracer != nil {
		fmt.Fprint(os.Stderr, t.tracer.Summary())
	}
	if t.tracePath == "" {
		return nil
	}
	f, err := os.Create(t.tracePath)
	if err != nil {
		return fmt.Errorf("trace file: %w: %w", err, fdx.ErrBadInput)
	}
	if err := t.tracer.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close trace: %w", err)
	}
	if t.verbose {
		fmt.Fprintf(os.Stderr, "fdx: trace written to %s\n", t.tracePath)
	}
	return nil
}

// counter reads a registry counter by name (0 when metrics are off).
func (t *telemetry) counter(name string) uint64 {
	if t.metrics == nil {
		return 0
	}
	return t.metrics.Counter(name).Value()
}

// sweeps returns the cumulative glasso sweep count.
func (t *telemetry) sweeps() uint64 { return t.counter(obs.MGlassoSweeps) }

// rowsAbsorbed returns the cumulative absorbed-row count.
func (t *telemetry) rowsAbsorbed() uint64 { return t.counter(obs.MRowsAbsorbed) }

// tornTails returns how many torn WAL tail records restores truncated.
func (t *telemetry) tornTails() uint64 { return t.counter(obs.MWALTornTail) }
