package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fdx"
)

// signalStream starts a deliberately slow stream run, delivers sig after
// delay, and returns stdout, stderr, and the exit code.
func signalStream(t *testing.T, ckpt string, sig os.Signal, delay time.Duration) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, "stream", "-checkpoint", ckpt,
		"-batch", "20", "-every", "1000", "-batch-delay", "30ms", csvPath)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(delay)
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var code int
	select {
	case err := <-done:
		code = 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("waiting for fdx stream: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("fdx stream did not exit after %v; stderr:\n%s", sig, stderr.String())
	}
	return stdout.String(), stderr.String(), code
}

// TestStreamSIGTERMDrainsCleanly: SIGTERM mid-stream checkpoints the
// absorbed prefix and exits 0; a rerun resumes from that checkpoint and
// produces the same dependencies as an uninterrupted run.
func TestStreamSIGTERMDrainsCleanly(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	_, stderr, code := signalStream(t, ckpt, syscall.SIGTERM, 200*time.Millisecond)
	if code != 0 {
		t.Fatalf("SIGTERM drain: exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "SIGTERM") || !strings.Contains(stderr, "exiting cleanly") {
		t.Errorf("drain did not announce itself; stderr:\n%s", stderr)
	}
	// The drain checkpointed: the WAL is reset and the rerun resumes.
	if fi, err := os.Stat(ckpt + fdx.WALSuffix); err == nil && fi.Size() != 0 {
		t.Errorf("post-drain WAL holds %d bytes, want 0", fi.Size())
	}
	resumed, stderr2, code := run(t, "stream", "-checkpoint", ckpt, "-batch", "20", "-every", "1000", csvPath)
	if code != 0 {
		t.Fatalf("rerun after drain: exit %d\n%s", code, stderr2)
	}
	if !strings.Contains(stderr2, "resuming from") {
		t.Errorf("rerun did not resume from the drain checkpoint; stderr:\n%s", stderr2)
	}
	fresh, _, code := run(t, "stream", "-checkpoint", filepath.Join(t.TempDir(), "ref.fdx"),
		"-batch", "20", "-every", "1000", csvPath)
	if code != 0 {
		t.Fatalf("reference run: exit %d", code)
	}
	if a, b := fdLines(fresh), fdLines(resumed); !equalStrings(a, b) {
		t.Errorf("dependencies after drained resume differ:\nfresh:   %v\nresumed: %v", a, b)
	}
}

// TestStreamSIGINTStaysInterrupt: SIGINT keeps the prompt-interrupt
// contract — exit 130, no clean-drain message.
func TestStreamSIGINTStaysInterrupt(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	_, stderr, code := signalStream(t, ckpt, os.Interrupt, 200*time.Millisecond)
	if code != 130 {
		t.Fatalf("SIGINT: exit %d, want 130; stderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "exiting cleanly") {
		t.Errorf("SIGINT took the drain path; stderr:\n%s", stderr)
	}
}

// TestStreamTornTailWarning: a WAL whose tail record was torn mid-append
// (simulated by truncation) makes a verbose resume print the torn-tail
// warning and continue one batch earlier.
func TestStreamTornTailWarning(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "state.fdx")
	rel, err := fdx.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{})
	if err := acc.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	wal, err := fdx.OpenWAL(ckpt + fdx.WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if err := acc.AddLogged(rel.Slice(b*100, (b+1)*100), wal); err != nil {
			t.Fatal(err)
		}
	}
	wal.Close()
	// Tear the tail: drop the last 5 bytes of the second record.
	walPath := ckpt + fdx.WALSuffix
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	_, stderr, code := run(t, "stream", "-v", "-checkpoint", ckpt, "-batch", "100", csvPath)
	if code != 0 {
		t.Fatalf("resume over torn WAL: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "torn WAL tail") {
		t.Errorf("verbose resume did not warn about the torn tail; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "1 batches, 100 rows already absorbed") {
		t.Errorf("resume position wrong (want 1 batch after truncation); stderr:\n%s", stderr)
	}
}
