// Command fdx discovers functional dependencies in a CSV file.
//
// Usage:
//
//	fdx [flags] data.csv
//	fdx stream -checkpoint state.fdx [flags] data.csv
//	fdx flight decode|tail|summary [flags] DIR
//
// CSV input needs a header row; .jsonl/.ndjson files are read as JSON
// Lines. Empty cells and JSON nulls are treated as missing
// values. The discovered FDs are printed one per line, optionally with the
// autoregression-matrix heatmap the model is derived from.
//
// The stream subcommand feeds the relation through the incremental
// Accumulator in fixed-size batches, write-ahead-logging every batch and
// durably checkpointing every -every batches. Killed at any point — even
// mid-write — a rerun with the same flags resumes from the checkpoint,
// re-absorbs only the unsaved batches, and produces the same dependencies
// as an uninterrupted run. With -shards N the batch grid is split across
// N supervised local workers, each its own crash domain with its own
// checkpoint and WAL; the merged result is bit-identical to -shards 1.
// With -ship URL the shard snapshots travel to an fdxd session instead
// and discovery runs server-side; -trace then captures supervisor, worker,
// and fdxd server spans in one file under one trace id.
//
// The flight subcommand decodes the black-box captures that -flight-dir
// (here and on fdxd) records: `decode` dumps samples as JSON or CSV,
// `tail` follows a live capture, `summary` prints the postmortem view.
//
// Exit codes map the error taxonomy: 0 success, 1 internal error, 2 bad
// input (malformed data, flags, or mismatched resume options), 3 corrupt
// or version-incompatible checkpoint, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"fdx"
	"fdx/internal/core"
	"fdx/internal/obs"
	"fdx/internal/profile"
	"fdx/internal/serve"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "stream":
			os.Exit(runStream(args[1:]))
		case "flight":
			os.Exit(runFlight(args[1:]))
		}
	}
	os.Exit(runDiscover(args))
}

// exitCode maps an error onto the command's documented exit codes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, fdx.ErrCancelled):
		return 130
	case errors.Is(err, fdx.ErrCorruptCheckpoint), errors.Is(err, fdx.ErrCheckpointVersion):
		return 3
	case errors.Is(err, fdx.ErrBadInput), errors.Is(err, fdx.ErrShardMismatch):
		return 2
	default:
		// ErrInternal and anything unclassified.
		return 1
	}
}

// fail prints the error and returns its exit code.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fdx:", err)
	return exitCode(err)
}

// loadRelation reads the input file, classifying I/O and parse failures as
// bad input.
func loadRelation(path string) (*fdx.Relation, error) {
	var (
		rel *fdx.Relation
		err error
	)
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		rel, err = fdx.LoadJSONL(path)
	} else {
		rel, err = fdx.LoadCSV(path)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, fdx.ErrBadInput)
	}
	return rel, nil
}

func runDiscover(args []string) int {
	fs := flag.NewFlagSet("fdx", flag.ExitOnError)
	var (
		lambda    = fs.Float64("lambda", 0, "graphical lasso sparsity penalty")
		threshold = fs.Float64("threshold", 0, "minimum |B| coefficient for an FD edge (0 = default 0.2)")
		ordering  = fs.String("ordering", "", "column ordering: heuristic|natural|amd|colamd|metis|nesdis|reverse|random")
		maxRows   = fs.Int("max-rows", 0, "cap on tuples used by the pair transform (0 = all)")
		seed      = fs.Int64("seed", 0, "random seed for the transform shuffle")
		heatmap   = fs.Bool("heatmap", false, "print the autoregression matrix heatmap")
		profileIt = fs.Bool("profile", false, "print a full profiling report (columns, keys, FDs, error rate)")
		normalize = fs.Bool("normalize", false, "print candidate keys and a 3NF synthesis from the discovered FDs")
		textSim   = fs.Bool("text-similarity", false, "use 3-gram similarity for text columns")
		numTol    = fs.Float64("numeric-tol", 0, "relative tolerance for numeric equality")
		compact   = fs.Bool("compact", false, "store transformed samples as float32 (half the memory, identical results)")
	)
	tflags := addTelemetryFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdx [flags] data.csv")
		fmt.Fprintln(os.Stderr, "       fdx stream -checkpoint state.fdx [flags] data.csv")
		fs.PrintDefaults()
		return 2
	}
	tel, err := tflags.setup()
	if err != nil {
		return fail(err)
	}
	rel, err := loadRelation(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	if *profileIt {
		rep, err := profile.Build(rel, profile.Options{Discovery: core.Options{
			Lambda:    *lambda,
			Threshold: *threshold,
			Ordering:  *ordering,
			Seed:      *seed,
			Obs:       obs.Hooks{Tracer: tel.tracer, Metrics: tel.metrics},
		}})
		if err != nil {
			return fail(err)
		}
		fmt.Print(rep.String())
		if err := tel.finish(); err != nil {
			return fail(err)
		}
		return 0
	}
	dopts := fdx.Options{
		Lambda:           *lambda,
		Threshold:        *threshold,
		Ordering:         *ordering,
		MaxRows:          *maxRows,
		Seed:             *seed,
		TextSimilarity:   *textSim,
		NumericTolerance: *numTol,
		CompactTransform: *compact,
	}
	tel.apply(&dopts)
	res, err := fdx.Discover(rel, dopts)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("%s: %d rows, %d attributes, %d FDs (transform %v, model %v)\n\n",
		rel.Name, rel.NumRows(), rel.NumCols(), len(res.FDs),
		res.TransformDuration.Round(1e6), res.ModelDuration.Round(1e6))
	for _, fd := range res.FDs {
		fmt.Printf("%s   (score %.3f)\n", fd, fd.Score)
	}
	if *heatmap {
		fmt.Println()
		fmt.Print(res.Heatmap())
	}
	if *normalize {
		keys, err := fdx.CandidateKeys(rel, res.FDs)
		if err != nil {
			return fail(err)
		}
		fmt.Println("\ncandidate keys:")
		for _, k := range keys {
			fmt.Printf("  (%s)\n", strings.Join(k, ", "))
		}
		tables, err := fdx.Synthesize3NF(rel, res.FDs)
		if err != nil {
			return fail(err)
		}
		fmt.Println("\n3NF synthesis:")
		for _, tb := range tables {
			fmt.Printf("  %s(%s)  key (%s)\n",
				tb.Name, strings.Join(tb.Attributes, ", "), strings.Join(tb.Key, ", "))
		}
	}
	if err := tel.finish(); err != nil {
		return fail(err)
	}
	return 0
}

func runStream(args []string) int {
	fs := flag.NewFlagSet("fdx stream", flag.ExitOnError)
	var (
		ckpt       = fs.String("checkpoint", "", "checkpoint file path (required); the WAL lives at this path + \".wal\"")
		every      = fs.Int("every", 16, "durably snapshot every N batches")
		batchRows  = fs.Int("batch", 512, "rows per accumulator batch")
		lambda     = fs.Float64("lambda", 0, "graphical lasso sparsity penalty")
		threshold  = fs.Float64("threshold", 0, "minimum |B| coefficient for an FD edge (0 = default 0.2)")
		ordering   = fs.String("ordering", "", "column ordering: heuristic|natural|amd|colamd|metis|nesdis|reverse|random")
		seed       = fs.Int64("seed", 0, "random seed for the transform shuffle (must match across resumes)")
		heatmap    = fs.Bool("heatmap", false, "print the autoregression matrix heatmap")
		textSim    = fs.Bool("text-similarity", false, "use 3-gram similarity for text columns (must match across resumes)")
		numTol     = fs.Float64("numeric-tol", 0, "relative tolerance for numeric equality (must match across resumes)")
		compact    = fs.Bool("compact", false, "store transformed samples as float32 (half the memory, identical results; may differ across resumes)")
		batchDelay = fs.Duration("batch-delay", 0, "sleep this long after each batch (throttle for live inspection)")
		shards     = fs.Int("shards", 1, "fan batches across N supervised local shard workers (1 = sequential); the result is bit-identical at any N")
		shardTries = fs.Int("shard-retries", 3, "restarts allowed per crashed or stalled shard worker")
		shardStall = fs.Duration("shard-stall-timeout", 0, "restart a shard worker that makes no progress for this long (0 = off)")
		ship       = fs.String("ship", "", "ship shard snapshots to this fdxd base URL (e.g. http://127.0.0.1:8080) and discover remotely")
		session    = fs.String("session", "", "fdxd session id for -ship (default: the checkpoint file name)")
		tenant     = fs.String("tenant", "", "X-Fdx-Tenant header for -ship (empty = the server's default tenant)")
	)
	tflags := addTelemetryFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *ckpt == "" || *every < 1 || *batchRows < 2 || *shards < 1 || *shardTries < 0 {
		fmt.Fprintln(os.Stderr, "usage: fdx stream -checkpoint state.fdx [-every N] [-batch B] [-shards S] [-ship URL] [flags] data.csv")
		fs.PrintDefaults()
		return 2
	}
	if *session == "" {
		*session = filepath.Base(*ckpt)
	}
	tel, err := tflags.setup()
	if err != nil {
		return fail(err)
	}
	opts := fdx.Options{
		Lambda:           *lambda,
		Threshold:        *threshold,
		Ordering:         *ordering,
		Seed:             *seed,
		TextSimilarity:   *textSim,
		NumericTolerance: *numTol,
		CompactTransform: *compact,
	}
	tel.apply(&opts)

	// SIGTERM asks for a graceful drain (checkpoint, exit 0); SIGINT stays
	// a prompt interrupt (exit 130). Both cancel the context so a running
	// discover stops at its next cancellation point.
	sigs := serve.NotifyDrain()
	defer sigs.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var draining atomic.Bool
	go func() {
		select {
		case <-sigs.Drain():
			draining.Store(true)
			cancel()
		case <-sigs.Interrupt():
			cancel()
		case <-ctx.Done():
		}
	}()

	rel, err := loadRelation(fs.Arg(0))
	if err != nil {
		return fail(err)
	}

	// Resume from the checkpoint when one exists; otherwise start fresh.
	acc, err := fdx.LoadCheckpoint(*ckpt, opts)
	switch {
	case err == nil:
		if got, want := acc.Attributes(), rel.AttrNames(); !equalStrings(got, want) {
			return fail(fmt.Errorf("checkpoint schema %v does not match %s schema %v: %w",
				got, fs.Arg(0), want, fdx.ErrBadInput))
		}
		fmt.Fprintf(os.Stderr, "fdx: resuming from %s: %d batches, %d rows already absorbed\n",
			*ckpt, acc.Batches(), acc.Rows())
		if tel.verbose && tel.tornTails() > 0 {
			fmt.Fprintf(os.Stderr, "fdx: warning: truncated a torn WAL tail record (the batch the previous run died appending); resuming one batch earlier\n")
		}
	case errors.Is(err, os.ErrNotExist):
		acc = fdx.NewAccumulator(rel.AttrNames(), opts)
		// Write the empty-state snapshot up front so batches logged before
		// the first periodic save are replayable rather than orphaned.
		if err := acc.SaveCheckpoint(*ckpt); err != nil {
			return fail(err)
		}
	default:
		return fail(err)
	}

	// The batch grid is a pure function of the input and -batch, so a
	// resumed run rebuilds the same batches and skips the absorbed prefix.
	total := rel.NumRows() / *batchRows
	if tail := rel.NumRows() % *batchRows; tail >= 2 {
		total++
	}
	if acc.Batches() > total {
		return fail(fmt.Errorf("checkpoint has %d batches but %s yields only %d with -batch %d: %w",
			acc.Batches(), fs.Arg(0), total, *batchRows, fdx.ErrBadInput))
	}

	if *shards > 1 || *ship != "" {
		// Sharded mode: supervised workers absorb disjoint spans into their
		// own checkpoints, then merge into the main one — bit-identical to
		// the sequential loop below at any shard count. With -ship the merge
		// happens remotely: snapshots travel to an fdxd session and
		// discovery runs server-side.
		cfg := shardedConfig{
			ckpt:      *ckpt,
			every:     *every,
			batchRows: *batchRows,
			shards:    *shards,
			retries:   *shardTries,
			stall:     *shardStall,
			verbose:   tel.verbose,
			obs:       tel.hooks(),
			log:       tel.log,
			ship:      *ship,
			session:   *session,
			tenant:    *tenant,
		}
		if *ship != "" {
			code, err := runShippedStream(ctx, rel, opts, acc, total, cfg, tel)
			if err != nil {
				if draining.Load() && errors.Is(err, fdx.ErrCancelled) {
					fmt.Fprintf(os.Stderr, "fdx: SIGTERM: shard checkpoints saved, exiting cleanly; rerun to resume\n")
					return 0
				}
				return fail(err)
			}
			return code
		}
		merged, err := runShardedStream(ctx, rel, opts, acc, total, cfg)
		if err != nil {
			if draining.Load() && errors.Is(err, fdx.ErrCancelled) {
				fmt.Fprintf(os.Stderr, "fdx: SIGTERM: shard checkpoints saved, exiting cleanly; rerun to resume\n")
				return 0
			}
			return fail(err)
		}
		return finishStream(ctx, rel, merged, tel, &draining, *ckpt, *heatmap)
	}

	wal, err := fdx.OpenWAL(*ckpt + fdx.WALSuffix)
	if err != nil {
		return fail(err)
	}
	defer wal.Close()

	sinceSave := 0
	loopStart := time.Now()
	for i := acc.Batches(); i < total; i++ {
		if cerr := ctx.Err(); cerr != nil {
			if draining.Load() {
				// Graceful drain: make everything absorbed durable and
				// exit cleanly; the next run resumes at this exact batch.
				if err := saveAndReset(acc, *ckpt, wal); err != nil {
					return fail(err)
				}
				fmt.Fprintf(os.Stderr, "fdx: SIGTERM: checkpointed %d/%d batches to %s, exiting cleanly\n",
					i, total, *ckpt)
				return 0
			}
			return fail(fmt.Errorf("stream interrupted after %d/%d batches: %w: %w", i, total, fdx.ErrCancelled, cerr))
		}
		lo := i * *batchRows
		hi := lo + *batchRows
		if hi > rel.NumRows() {
			hi = rel.NumRows()
		}
		if err := acc.AddLogged(rel.Slice(lo, hi), wal); err != nil {
			return fail(err)
		}
		if tel.verbose {
			rate := float64(tel.rowsAbsorbed()) / time.Since(loopStart).Seconds()
			fmt.Fprintf(os.Stderr, "fdx: batch %d/%d  %d rows absorbed  %.0f rows/s  %d sweeps\n",
				i+1, total, acc.Rows(), rate, tel.sweeps())
		}
		if *batchDelay > 0 {
			time.Sleep(*batchDelay)
		}
		if sinceSave++; sinceSave == *every {
			if err := saveAndReset(acc, *ckpt, wal); err != nil {
				return fail(err)
			}
			sinceSave = 0
		}
	}
	if err := saveAndReset(acc, *ckpt, wal); err != nil {
		return fail(err)
	}
	return finishStream(ctx, rel, acc, tel, &draining, *ckpt, *heatmap)
}

// finishStream runs discovery on the fully-absorbed accumulator and
// prints the dependencies — the common tail of the sequential and
// sharded stream paths.
func finishStream(ctx context.Context, rel *fdx.Relation, acc *fdx.Accumulator, tel *telemetry, draining *atomic.Bool, ckpt string, heatmap bool) int {
	res, err := acc.DiscoverContext(ctx)
	if err != nil {
		if draining.Load() && errors.Is(err, fdx.ErrCancelled) {
			// The drain hit during discovery; the stream itself is already
			// checkpointed, so stopping here loses nothing.
			fmt.Fprintf(os.Stderr, "fdx: SIGTERM: stream checkpointed to %s, discovery cancelled, exiting cleanly\n", ckpt)
			return 0
		}
		return fail(err)
	}
	if tel.verbose {
		fmt.Fprintf(os.Stderr, "fdx: discover done: %d glasso sweeps total\n", tel.sweeps())
	}
	fmt.Printf("%s: %d rows in %d batches, %d attributes, %d FDs (model %v)\n\n",
		rel.Name, acc.Rows(), acc.Batches(), rel.NumCols(), len(res.FDs),
		res.ModelDuration.Round(1e6))
	for _, fd := range res.FDs {
		fmt.Printf("%s   (score %.3f)\n", fd, fd.Score)
	}
	if heatmap {
		fmt.Println()
		fmt.Print(res.Heatmap())
	}
	if err := tel.finish(); err != nil {
		return fail(err)
	}
	return 0
}

// saveAndReset durably snapshots the accumulator and truncates the WAL the
// snapshot now covers.
func saveAndReset(acc *fdx.Accumulator, path string, wal *fdx.WAL) error {
	if err := acc.SaveCheckpoint(path); err != nil {
		return err
	}
	return wal.Reset()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
