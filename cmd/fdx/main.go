// Command fdx discovers functional dependencies in a CSV file.
//
// Usage:
//
//	fdx [flags] data.csv
//
// CSV input needs a header row; .jsonl/.ndjson files are read as JSON
// Lines. Empty cells and JSON nulls are treated as missing
// values. The discovered FDs are printed one per line, optionally with the
// autoregression-matrix heatmap the model is derived from.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fdx"
	"fdx/internal/core"
	"fdx/internal/profile"
)

func main() {
	var (
		lambda    = flag.Float64("lambda", 0, "graphical lasso sparsity penalty")
		threshold = flag.Float64("threshold", 0, "minimum |B| coefficient for an FD edge (0 = default 0.2)")
		ordering  = flag.String("ordering", "", "column ordering: heuristic|natural|amd|colamd|metis|nesdis|reverse|random")
		maxRows   = flag.Int("max-rows", 0, "cap on tuples used by the pair transform (0 = all)")
		seed      = flag.Int64("seed", 0, "random seed for the transform shuffle")
		heatmap   = flag.Bool("heatmap", false, "print the autoregression matrix heatmap")
		profileIt = flag.Bool("profile", false, "print a full profiling report (columns, keys, FDs, error rate)")
		normalize = flag.Bool("normalize", false, "print candidate keys and a 3NF synthesis from the discovered FDs")
		textSim   = flag.Bool("text-similarity", false, "use 3-gram similarity for text columns")
		numTol    = flag.Float64("numeric-tol", 0, "relative tolerance for numeric equality")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdx [flags] data.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	var rel *fdx.Relation
	var err error
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		rel, err = fdx.LoadJSONL(path)
	} else {
		rel, err = fdx.LoadCSV(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdx:", err)
		os.Exit(1)
	}
	if *profileIt {
		rep, err := profile.Build(rel, profile.Options{Discovery: core.Options{
			Lambda:    *lambda,
			Threshold: *threshold,
			Ordering:  *ordering,
			Seed:      *seed,
		}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdx:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		return
	}
	res, err := fdx.Discover(rel, fdx.Options{
		Lambda:           *lambda,
		Threshold:        *threshold,
		Ordering:         *ordering,
		MaxRows:          *maxRows,
		Seed:             *seed,
		TextSimilarity:   *textSim,
		NumericTolerance: *numTol,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdx:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d rows, %d attributes, %d FDs (transform %v, model %v)\n\n",
		rel.Name, rel.NumRows(), rel.NumCols(), len(res.FDs),
		res.TransformDuration.Round(1e6), res.ModelDuration.Round(1e6))
	for _, fd := range res.FDs {
		fmt.Printf("%s   (score %.3f)\n", fd, fd.Score)
	}
	if *heatmap {
		fmt.Println()
		fmt.Print(res.Heatmap())
	}
	if *normalize {
		keys, err := fdx.CandidateKeys(rel, res.FDs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdx:", err)
			os.Exit(1)
		}
		fmt.Println("\ncandidate keys:")
		for _, k := range keys {
			fmt.Printf("  (%s)\n", strings.Join(k, ", "))
		}
		tables, err := fdx.Synthesize3NF(rel, res.FDs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdx:", err)
			os.Exit(1)
		}
		fmt.Println("\n3NF synthesis:")
		for _, tb := range tables {
			fmt.Printf("  %s(%s)  key (%s)\n",
				tb.Name, strings.Join(tb.Attributes, ", "), strings.Join(tb.Key, ", "))
		}
	}
}
