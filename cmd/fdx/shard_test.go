package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fdx"
	"fdx/internal/faults"
)

// The shard chaos suite drives the supervised sharded stream in-process
// (so faults can be armed around it) and pins the crash-equivalence
// contract: with crashes, stalls, and corrupt snapshots injected, every
// sharded run either completes bit-identical to the uninterrupted
// 1-shard run or fails with a taxonomy-typed error — never a wrong
// answer. Faults are process-global, so these tests do not run parallel
// to each other.

// streamArgs builds a stream invocation against the shared test CSV.
func streamArgs(ckpt string, extra ...string) []string {
	args := []string{"-checkpoint", ckpt, "-batch", "50", "-every", "2"}
	args = append(args, extra...)
	return append(args, csvPath)
}

// runStreamInProcess calls runStream directly, capturing stdout so the
// printed dependency lines can be compared across runs.
func runStreamInProcess(t *testing.T, args []string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := runStream(args)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	r.Close()
	return sb.String(), code
}

// referenceFDs runs the uninterrupted 1-shard stream once per test and
// returns its dependency lines (the bit-identity baseline: identical B
// would print identical scores).
func referenceFDs(t *testing.T) []string {
	t.Helper()
	out, code := runStreamInProcess(t, streamArgs(filepath.Join(t.TempDir(), "ref.fdx")))
	if code != 0 {
		t.Fatalf("reference 1-shard run: exit %d\n%s", code, out)
	}
	fds := fdLines(out)
	if len(fds) == 0 {
		t.Fatalf("reference run found no dependencies:\n%s", out)
	}
	return fds
}

// TestShardedStreamMatchesSequential pins the clean-path equivalence at
// several shard counts.
func TestShardedStreamMatchesSequential(t *testing.T) {
	want := referenceFDs(t)
	for _, shards := range []int{2, 4, 8} {
		ckpt := filepath.Join(t.TempDir(), "state.fdx")
		out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", fmt.Sprint(shards)))
		if code != 0 {
			t.Fatalf("shards=%d: exit %d\n%s", shards, code, out)
		}
		if got := fdLines(out); !equalStrings(got, want) {
			t.Errorf("shards=%d dependencies differ:\nsharded:    %v\nsequential: %v", shards, got, want)
		}
	}
}

// TestShardedStreamSurvivesCrashes kills every shard worker at every
// checkpoint boundary until the fault budget runs dry; the supervisor
// must restart each from its own WAL/checkpoint and the merged result
// must match the uninterrupted run exactly.
func TestShardedStreamSurvivesCrashes(t *testing.T) {
	want := referenceFDs(t)
	for _, shards := range []int{2, 4, 8} {
		func() {
			defer faults.Reset()
			// Enough shots that every shard crashes at multiple boundaries;
			// retries cover the worst case of one shard eating every shot.
			faults.Arm(faults.ShardCrash, faults.Config{Times: 2 * shards})
			ckpt := filepath.Join(t.TempDir(), "state.fdx")
			out, code := runStreamInProcess(t, streamArgs(ckpt,
				"-shards", fmt.Sprint(shards), "-shard-retries", fmt.Sprint(2*shards)))
			if code != 0 {
				t.Fatalf("shards=%d with crashes: exit %d\n%s", shards, code, out)
			}
			if got := fdLines(out); !equalStrings(got, want) {
				t.Errorf("shards=%d crash run differs:\ncrashed:    %v\nsequential: %v", shards, got, want)
			}
		}()
	}
}

// TestShardedStreamCrashEveryBoundary arms an unlimited crash budget
// with -shard-retries 0: the run must fail, and with a typed,
// classified error (exit 1 for the simulated crash), never a wrong
// answer or a corrupted main checkpoint — a follow-up clean run against
// the same checkpoint must still produce the reference dependencies.
func TestShardedStreamCrashEveryBoundary(t *testing.T) {
	want := referenceFDs(t)
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	func() {
		defer faults.Reset()
		faults.Arm(faults.ShardCrash, faults.Config{}) // unlimited
		out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "4", "-shard-retries", "0"))
		if code == 0 {
			t.Fatalf("run with unlimited crashes and no retries succeeded:\n%s", out)
		}
	}()
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "4"))
	if code != 0 {
		t.Fatalf("recovery run: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("recovery after crash-looped run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardedStreamSurvivesStalls stalls shard workers long enough for
// the watchdog to cancel and restart them; the result must still match.
func TestShardedStreamSurvivesStalls(t *testing.T) {
	want := referenceFDs(t)
	defer faults.Reset()
	faults.Arm(faults.ShardStall, faults.Config{Times: 2, Delay: 500 * time.Millisecond})
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	out, code := runStreamInProcess(t, streamArgs(ckpt,
		"-shards", "2", "-shard-retries", "6", "-shard-stall-timeout", "100ms"))
	if code != 0 {
		t.Fatalf("stalled run: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("stalled run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardedStreamSurvivesMergeCorruption flips a bit in shard
// snapshots as they are read for merging; the merge phase must re-read
// and still produce the exact sequential result.
func TestShardedStreamSurvivesMergeCorruption(t *testing.T) {
	want := referenceFDs(t)
	defer faults.Reset()
	faults.Arm(faults.MergeCorrupt, faults.Config{Times: 2})
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "4", "-shard-retries", "3"))
	if code != 0 {
		t.Fatalf("merge-corrupt run: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("merge-corrupt run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardedStreamPersistentCorruptionFailsTyped exhausts the merge
// retries with an unlimited corruption fault: the run must fail with the
// checkpoint taxonomy (exit 3), not a wrong answer.
func TestShardedStreamPersistentCorruptionFailsTyped(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.MergeCorrupt, faults.Config{}) // unlimited
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "2", "-shard-retries", "1"))
	if code != 3 {
		t.Fatalf("persistently corrupt merge: exit %d, want 3\n%s", code, out)
	}
}

// TestShardedStreamResumesAcrossRuns interrupts a sharded run mid-span
// (via an exhausted crash budget), then completes it with a second
// sharded run that must resume the shard checkpoints rather than start
// over, and a third run that must find the merged grid complete.
func TestShardedStreamResumesAcrossRuns(t *testing.T) {
	want := referenceFDs(t)
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	func() {
		defer faults.Reset()
		faults.Arm(faults.ShardCrash, faults.Config{})
		if _, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "3", "-shard-retries", "0")); code == 0 {
			t.Fatal("crash-looped first run unexpectedly succeeded")
		}
	}()
	// Shard scratch files now hold partial spans; a clean rerun resumes
	// them and completes.
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "3"))
	if code != 0 {
		t.Fatalf("resuming run: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("resumed sharded run differs:\ngot:  %v\nwant: %v", got, want)
	}
	// The merged checkpoint covers everything; a further run (even at a
	// different shard count) must short-circuit to the same answer.
	out, code = runStreamInProcess(t, streamArgs(ckpt, "-shards", "5"))
	if code != 0 {
		t.Fatalf("post-merge run: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("post-merge run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardedStreamMoreShardsThanBatches covers empty spans: the grid
// has 12 batches at -batch 50, so 16 shards leave some workers idle.
func TestShardedStreamMoreShardsThanBatches(t *testing.T) {
	want := referenceFDs(t)
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "16"))
	if code != 0 {
		t.Fatalf("16 shards: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("16-shard run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardedStreamAfterSequentialPrefix drains a sequential run partway
// (library-level prefix checkpoint), then finishes sharded: the shards
// must split only the remaining batches and merge cleanly onto the
// prefix.
func TestShardedStreamAfterSequentialPrefix(t *testing.T) {
	want := referenceFDs(t)
	rel, err := fdx.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{})
	for b := 0; b < 3; b++ {
		if err := acc.Add(rel.Slice(b*50, (b+1)*50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	out, code := runStreamInProcess(t, streamArgs(ckpt, "-shards", "4"))
	if code != 0 {
		t.Fatalf("sharded run on a sequential prefix: exit %d\n%s", code, out)
	}
	if got := fdLines(out); !equalStrings(got, want) {
		t.Errorf("prefix+sharded run differs:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestShardSupervisorClassifiesErrors checks the supervisor's permanent-vs-
// retryable split directly: a cancelled context is permanent (no retry
// burn), a shard mismatch is permanent, and the typed errors flow out.
func TestShardSupervisorClassifiesErrors(t *testing.T) {
	rel, err := fdx.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := shardedConfig{ckpt: filepath.Join(t.TempDir(), "s.fdx"),
		every: 2, batchRows: 50, shards: 2, retries: 3}
	err = superviseShard(ctx, rel, fdx.Options{}, fdx.BatchRange{Lo: 0, Hi: 3}, 0, cfg)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled supervisor returned %v, want context.Canceled", err)
	}
}
