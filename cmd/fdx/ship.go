package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"fdx"
	"fdx/internal/obs"
	"fdx/internal/serve"
)

// Ship mode: `fdx stream -ship URL -session NAME` absorbs the batch grid
// through the same supervised shard workers as local sharded mode, but
// instead of merging locally it ships each shard's snapshot to an fdxd
// session and runs discovery server-side. Shard checkpoints stay on disk
// as the local durability story: a rerun re-absorbs nothing, re-ships the
// same sequence numbers (acknowledged as duplicates), and re-discovers —
// the whole path is idempotent. With -trace, the client spans carry W3C
// traceparent headers and graft fdxd's echoed server spans back in, so
// one trace file covers supervisor, workers, and server under one
// trace id.

// runShippedStream is the -ship analogue of runShardedStream +
// finishStream: absorb locally, merge and discover remotely, print the
// dependencies. The returned int is the process exit code when err is
// nil; the caller maps a non-nil err through the exit-code taxonomy.
func runShippedStream(ctx context.Context, rel *fdx.Relation, opts fdx.Options, base *fdx.Accumulator, total int, cfg shardedConfig, tel *telemetry) (int, error) {
	root := cfg.obs.Start("stream")
	defer root.End()
	root.Attr("shards", cfg.shards)
	root.Attr("ship", cfg.ship)
	root.Attr("session", cfg.session)
	cfg.obs = cfg.obs.Under(root)
	cfg.log = supervisorLogger(cfg.log, root)

	spans, err := absorbShards(ctx, rel, opts, base, total, cfg)
	if err != nil {
		return 0, err
	}

	client := &serve.ShardClient{
		BaseURL:        cfg.ship,
		Tenant:         cfg.tenant,
		RequestTimeout: 30 * time.Second,
		Metrics:        tel.metrics,
		Obs:            cfg.obs,
	}
	if err := client.CreateSession(ctx, cfg.session, rel.AttrNames(), wireOptions(opts)); err != nil {
		return 0, fmt.Errorf("creating session %q on %s: %w", cfg.session, cfg.ship, err)
	}

	// Sequence numbers are a pure function of the shard layout, so a rerun
	// re-ships the same seqs and the server acks them as duplicates: the
	// main checkpoint's sequential prefix (if any) is seq 1, shard s is
	// seq s+2.
	if base.Batches() > 0 {
		var buf bytes.Buffer
		if err := base.Snapshot(&buf); err != nil {
			return 0, err
		}
		applied, err := client.ShipShard(ctx, cfg.session, 1, buf.Bytes())
		if err != nil {
			return 0, fmt.Errorf("shipping checkpoint prefix: %w", err)
		}
		cfg.log.Info("prefix_shipped", "seq", 1, "batches", base.Batches(), "applied", applied)
	}
	for s, span := range spans {
		if span.Lo == span.Hi {
			continue
		}
		snap, err := os.ReadFile(cfg.shardPath(s))
		if err != nil {
			return 0, fmt.Errorf("reading shard %d snapshot: %w: %w", s, err, fdx.ErrBadInput)
		}
		applied, err := client.ShipShard(ctx, cfg.session, s+2, snap)
		if err != nil {
			return 0, fmt.Errorf("shipping shard %d: %w", s, err)
		}
		cfg.shardHooks(s).Count(obs.MShardShipped, 1)
		cfg.log.Info("shard_shipped", "shard", s, "seq", s+2, "bytes", len(snap), "applied", applied)
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "fdx: shard %d shipped to %s (seq %d, applied %v)\n", s, cfg.ship, s+2, applied)
		}
	}

	resp, err := client.Discover(ctx, cfg.session)
	if err != nil {
		return 0, fmt.Errorf("remote discover: %w", err)
	}
	fmt.Printf("%s: %d rows in %d batches, %d attributes, %d FDs (remote %s session %s)\n\n",
		rel.Name, resp.Rows, resp.Batches, len(resp.Attributes), len(resp.FDs), cfg.ship, cfg.session)
	for _, fd := range resp.FDs {
		fmt.Printf("%s -> %s   (score %.3f)\n", strings.Join(fd.LHS, ","), fd.RHS, fd.Score)
	}
	if err := tel.finish(); err != nil {
		return 0, err
	}
	return 0, nil
}

// wireOptions maps the stream's discovery options onto the session wire
// options, so the server's remote discovery matches a local run exactly.
func wireOptions(opts fdx.Options) serve.SessionOptions {
	return serve.SessionOptions{
		Lambda:             opts.Lambda,
		Threshold:          opts.Threshold,
		RelFraction:        opts.RelFraction,
		Ordering:           opts.Ordering,
		MaxRows:            opts.MaxRows,
		NumericTolerance:   opts.NumericTolerance,
		TextSimilarity:     opts.TextSimilarity,
		Workers:            opts.Workers,
		Seed:               opts.Seed,
		RequireConvergence: opts.RequireConvergence,
	}
}
