package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fdx"
	"fdx/internal/faults"
	"fdx/internal/obs"
	"fdx/internal/serve/retry"
)

// Sharded streaming: `fdx stream -shards N` splits the batch grid into N
// contiguous spans and absorbs them concurrently, one supervised worker
// per shard. Each worker is its own crash domain with its own checkpoint
// and WAL (at <checkpoint>.shard-<s>-of-<N>); a worker that crashes or
// stalls is restarted from that state and re-absorbs only its own
// unsaved batches. When every span is absorbed, the shard states are
// folded into the main checkpoint through fdx.MergeShards, whose result
// is bit-identical to the sequential run — every batch keeps its global
// transform seed no matter which shard absorbed it.

// errShardCrash is the simulated kill the ShardCrash fault injects at a
// worker's checkpoint boundary; the supervisor treats it (like any
// undifferentiated worker failure) as retryable.
var errShardCrash = errors.New("injected shard crash at checkpoint boundary")

// errShardStall marks a worker cancelled by the stall watchdog:
// retryable, unlike a parent-context cancellation.
var errShardStall = errors.New("shard made no progress within the stall timeout")

// shardedConfig carries runStream's supervisor knobs.
type shardedConfig struct {
	ckpt      string
	every     int
	batchRows int
	shards    int
	retries   int           // worker restarts / merge re-reads beyond the first attempt
	stall     time.Duration // watchdog: restart a worker silent this long (0 = off)
	verbose   bool
	obs       obs.Hooks    // supervisor telemetry; runShardedStream nests it under the root span
	log       *slog.Logger // structured supervisor events (shard_restart, shard_stall, ...)
	ship      string       // fdxd base URL; "" keeps the merge local
	session   string       // fdxd session id for -ship
	tenant    string       // X-Fdx-Tenant for -ship
}

// shardHooks returns the supervisor hooks with shard s's metric label, so
// restart/stall/ship counters split per shard on /metrics.
func (cfg *shardedConfig) shardHooks(s int) obs.Hooks {
	h := cfg.obs
	h.Labels = []string{"shard", strconv.Itoa(s)}
	return h
}

// shardPath names shard s's private checkpoint; its WAL lives at the
// usual +fdx.WALSuffix. The shard count is part of the name so changing
// -shards never resumes against a span layout the file was not built for.
func (cfg *shardedConfig) shardPath(s int) string {
	return fmt.Sprintf("%s.shard-%d-of-%d", cfg.ckpt, s, cfg.shards)
}

// runShardedStream absorbs the batch grid [base.NextGlobal(), total)
// through supervised shard workers, merges the shard states into base,
// durably saves the result to cfg.ckpt, and returns it. On any error the
// main checkpoint is untouched; shard checkpoints hold whatever their
// workers last saved, so a rerun resumes rather than restarts.
func runShardedStream(ctx context.Context, rel *fdx.Relation, opts fdx.Options, base *fdx.Accumulator, total int, cfg shardedConfig) (*fdx.Accumulator, error) {
	if cov := base.Coverage(); len(cov) == 1 && cov[0].Lo == 0 && cov[0].Hi == total {
		// A previous run already merged the full grid; nothing to absorb.
		return base, nil
	}
	// Root supervisor span: workers fan out beneath it on their own tracks,
	// and it must end before the trace file is written, so no defer-to-exit.
	root := cfg.obs.Start("stream")
	defer root.End()
	root.Attr("shards", cfg.shards)
	cfg.obs = cfg.obs.Under(root)
	cfg.log = supervisorLogger(cfg.log, root)

	spans, err := absorbShards(ctx, rel, opts, base, total, cfg)
	if err != nil {
		return nil, err
	}

	// Phase 2: merge. Each shard snapshot is re-read from disk through the
	// checkpoint decoder — fully validated before it can touch any state —
	// and the shard accumulators fold into base through a fixed reduction
	// tree. A snapshot that reads corrupt is retried (the file may be
	// mid-rewrite or the corruption transient); persistent corruption
	// surfaces the typed error with the main checkpoint unharmed.
	msp := cfg.obs.Start("merge")
	defer msp.End()
	accs := []*fdx.Accumulator{base}
	for s, span := range spans {
		if span.Lo == span.Hi {
			continue
		}
		acc, err := loadShardSnapshot(ctx, rel, opts, cfg.shardPath(s), s, cfg)
		if err != nil {
			return nil, fmt.Errorf("merging shard %d: %w", s, err)
		}
		accs = append(accs, acc)
	}
	merged, err := fdx.MergeShards(accs, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	if err := merged.SaveCheckpoint(cfg.ckpt); err != nil {
		return nil, err
	}
	// The merged snapshot covers everything; clear any stale main WAL so a
	// rerun replays nothing, then drop the shard scratch files (recomputable
	// from the input; best-effort).
	if wal, werr := fdx.OpenWAL(cfg.ckpt + fdx.WALSuffix); werr == nil {
		wal.Reset()
		wal.Close()
	}
	for s, span := range spans {
		if span.Lo == span.Hi {
			continue
		}
		os.Remove(cfg.shardPath(s))
		os.Remove(cfg.shardPath(s) + fdx.WALSuffix)
	}
	msp.Attr("batches", merged.Batches())
	cfg.log.Info("shards_merged", "shards", len(accs)-1, "checkpoint", cfg.ckpt, "batches", merged.Batches())
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "fdx: merged %d shards into %s (%d batches)\n",
			len(accs)-1, cfg.ckpt, merged.Batches())
	}
	return merged, nil
}

// supervisorLogger binds the run's trace identity onto the supervisor's
// structured log lines, so `grep trace_id=` joins CLI logs with fdxd's.
func supervisorLogger(log *slog.Logger, root *obs.Span) *slog.Logger {
	if log == nil {
		log = slog.Default()
	}
	if tid := root.TraceID(); tid != "" {
		log = log.With("trace_id", tid, "span_id", root.SpanID())
	}
	return log
}

// absorbShards is phase 1 of both sharded paths (local merge and -ship):
// split the unabsorbed remainder of the batch grid into spans and run one
// supervised worker per span, each its own crash domain. On return with a
// nil error every span's shard checkpoint holds its full coverage.
func absorbShards(ctx context.Context, rel *fdx.Relation, opts fdx.Options, base *fdx.Accumulator, total int, cfg shardedConfig) ([]fdx.BatchRange, error) {
	// The main checkpoint may hold a sequential prefix [0, begin) from an
	// earlier unsharded run or drain; shards split only the remainder.
	begin := base.NextGlobal()
	spans := fdx.ShardSpans(total-begin, cfg.shards)
	for i := range spans {
		spans[i].Lo += begin
		spans[i].Hi += begin
	}

	// One supervisor goroutine per non-empty span, each restarting its
	// worker with backoff on crash or stall.
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for s, span := range spans {
		if span.Lo == span.Hi {
			continue
		}
		wg.Add(1)
		go func(s int, span fdx.BatchRange) {
			defer wg.Done()
			errs[s] = superviseShard(ctx, rel, opts, span, s, cfg)
		}(s, span)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Workers past the failure saved their own checkpoints; report
			// the lowest-index failure deterministically.
			return nil, err
		}
	}
	return spans, nil
}

// superviseShard runs one shard's worker, restarting it with jittered
// backoff when it crashes or stalls. Cancellation, bad input, and shard
// mismatches are permanent; everything else gets cfg.retries restarts,
// each resuming from the shard's own checkpoint and WAL.
func superviseShard(ctx context.Context, rel *fdx.Relation, opts fdx.Options, span fdx.BatchRange, s int, cfg shardedConfig) error {
	var progress atomic.Int64
	h := cfg.shardHooks(s)
	pol := retry.Policy{
		Base:        25 * time.Millisecond,
		Cap:         time.Second,
		MaxAttempts: cfg.retries + 1,
		Seed:        int64(s),
		Notify: func(attempt int, wait time.Duration, err error) {
			h.Count(obs.MShardRestarts, 1)
			cfg.log.Info("shard_restart", "shard", s, "attempt", attempt+1, "error", err.Error(), "wait", wait)
			if cfg.verbose {
				fmt.Fprintf(os.Stderr, "fdx: shard %d attempt %d failed (%v); restarting from its checkpoint in %v\n",
					s, attempt+1, err, wait)
			}
		},
	}
	return pol.Do(ctx, func(attempt int) (time.Duration, error) {
		// One span per attempt on the shard's own viewer track, so restarts
		// show up as separate bars in the same lane.
		wsp := cfg.obs.Start("shard")
		defer wsp.End()
		wsp.SetTrack(s + 2)
		wsp.Attr("shard", s)
		wsp.Attr("span", fmt.Sprintf("[%d,%d)", span.Lo, span.Hi))
		if attempt > 0 {
			wsp.Attr("attempt", attempt+1)
		}
		attemptCtx, cancel := context.WithCancel(ctx)
		var stalled atomic.Bool
		var watch sync.WaitGroup
		if cfg.stall > 0 {
			watch.Add(1)
			go func() {
				defer watch.Done()
				watchShard(attemptCtx, cancel, &progress, cfg.stall, &stalled)
			}()
		}
		err := runShardWorker(attemptCtx, rel, opts, span, cfg.shardPath(s), cfg, &progress)
		cancel()
		watch.Wait()
		if err == nil {
			return 0, nil
		}
		wsp.Attr("error", err.Error())
		switch {
		case ctx.Err() != nil:
			// The whole run is shutting down; the worker already saved.
			return 0, retry.Permanent(err)
		case stalled.Load():
			h.Count(obs.MShardStalls, 1)
			cfg.log.Warn("shard_stall", "shard", s, "stall_timeout", cfg.stall)
			return 0, fmt.Errorf("shard %d: %w", s, errShardStall)
		case errors.Is(err, fdx.ErrBadInput), errors.Is(err, fdx.ErrShardMismatch):
			return 0, retry.Permanent(err)
		default:
			// Crash (simulated or real), stall-adjacent I/O failure,
			// corrupt shard state: restart from the shard's checkpoint.
			return 0, err
		}
	})
}

// watchShard cancels a worker attempt that reports no progress for the
// stall timeout, marking the cancellation as a stall so the supervisor
// restarts instead of aborting.
func watchShard(ctx context.Context, cancel context.CancelFunc, progress *atomic.Int64, stall time.Duration, stalled *atomic.Bool) {
	tick := stall / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := progress.Load()
	idle := time.Duration(0)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if cur := progress.Load(); cur != last {
				last, idle = cur, 0
				continue
			}
			if idle += tick; idle >= stall {
				stalled.Store(true)
				cancel()
				return
			}
		}
	}
}

// runShardWorker absorbs one span of the batch grid into the shard's own
// checkpoint state, write-ahead-logging every batch and durably
// snapshotting every cfg.every batches — the same crash contract as the
// sequential stream, scoped to the span. A restart resumes at the
// shard's own NextGlobal.
func runShardWorker(ctx context.Context, rel *fdx.Relation, opts fdx.Options, span fdx.BatchRange, path string, cfg shardedConfig, progress *atomic.Int64) error {
	acc, err := fdx.LoadCheckpoint(path, opts)
	switch {
	case err == nil:
		if !shardStateFits(acc, span) {
			// A leftover file from a different span layout or input. Shard
			// state is pure scratch — recomputable from the relation — so
			// discard it and start the span over.
			if cfg.verbose {
				fmt.Fprintf(os.Stderr, "fdx: shard checkpoint %s covers %v, outside span %v; starting the span fresh\n",
					path, acc.Coverage(), span)
			}
			os.Remove(path)
			os.Remove(path + fdx.WALSuffix)
			acc = nil
		}
	case errors.Is(err, os.ErrNotExist):
		acc = nil
	default:
		return err
	}
	if acc == nil {
		acc = fdx.NewAccumulator(rel.AttrNames(), opts)
		if err := acc.SaveCheckpoint(path); err != nil {
			return err
		}
	}
	wal, err := fdx.OpenWAL(path + fdx.WALSuffix)
	if err != nil {
		return err
	}
	defer wal.Close()

	start := acc.NextGlobal()
	if start < span.Lo {
		start = span.Lo
	}
	sinceSave := 0
	for g := start; g < span.Hi; g++ {
		if cerr := ctx.Err(); cerr != nil {
			// Drain, interrupt, or stall watchdog: make what we absorbed
			// durable so the restart (or the next run) resumes here.
			if err := saveAndReset(acc, path, wal); err != nil {
				return err
			}
			return fmt.Errorf("shard worker stopped at batch %d/%v: %w: %w", g, span, fdx.ErrCancelled, cerr)
		}
		faults.Sleep(faults.ShardStall)
		lo := g * cfg.batchRows
		hi := lo + cfg.batchRows
		if hi > rel.NumRows() {
			hi = rel.NumRows()
		}
		if err := acc.AddLoggedAt(rel.Slice(lo, hi), g, wal); err != nil {
			return err
		}
		progress.Add(1)
		if sinceSave++; sinceSave == cfg.every {
			// Checkpoint boundary: the crash fault kills the worker here,
			// leaving up to cfg.every batches only in the WAL — exactly what
			// the restart must replay.
			if faults.Fire(faults.ShardCrash) {
				return fmt.Errorf("shard worker at batch %d/%v: %w", g+1, span, errShardCrash)
			}
			if err := saveAndReset(acc, path, wal); err != nil {
				return err
			}
			sinceSave = 0
		}
	}
	if err := saveAndReset(acc, path, wal); err != nil {
		return err
	}
	if faults.Fire(faults.ShardCrash) {
		// Crash after the final save: the restart reloads a complete span
		// and must conclude with nothing to do.
		return fmt.Errorf("shard worker after final save of %v: %w", span, errShardCrash)
	}
	return nil
}

// shardStateFits reports whether a restored shard checkpoint belongs to
// this span: empty, or a single absorbed prefix of it.
func shardStateFits(acc *fdx.Accumulator, span fdx.BatchRange) bool {
	cov := acc.Coverage()
	if len(cov) == 0 {
		return true
	}
	return len(cov) == 1 && cov[0].Lo == span.Lo && cov[0].Hi <= span.Hi
}

// loadShardSnapshot reads a completed shard's snapshot through the
// validating merge decoder into a fresh accumulator, retrying reads that
// surface corruption (re-reading heals transient damage; persistent
// damage exhausts the attempts and keeps the typed error).
func loadShardSnapshot(ctx context.Context, rel *fdx.Relation, opts fdx.Options, path string, s int, cfg shardedConfig) (*fdx.Accumulator, error) {
	var acc *fdx.Accumulator
	pol := retry.Policy{
		Base:        25 * time.Millisecond,
		Cap:         time.Second,
		MaxAttempts: cfg.retries + 1,
		Seed:        int64(s),
		Notify: func(attempt int, wait time.Duration, err error) {
			if cfg.verbose {
				fmt.Fprintf(os.Stderr, "fdx: shard %d snapshot read %d failed (%v); re-reading in %v\n",
					s, attempt+1, err, wait)
			}
		},
	}
	err := pol.Do(ctx, func(int) (time.Duration, error) {
		f, err := os.Open(path)
		if err != nil {
			return 0, retry.Permanent(fmt.Errorf("%v: %w", err, fdx.ErrBadInput))
		}
		defer f.Close()
		a := fdx.NewAccumulator(rel.AttrNames(), opts)
		if _, err := a.MergeSnapshot(f); err != nil {
			if errors.Is(err, fdx.ErrCorruptCheckpoint) {
				return 0, err
			}
			return 0, retry.Permanent(err)
		}
		acc = a
		return 0, nil
	})
	return acc, err
}
