package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fdx"
)

var (
	binPath string
	csvPath string
)

// TestMain builds the fdx binary once so the tests can observe real exit
// codes, and writes a deterministic CSV with clean zip→city and
// city→state dependencies for the stream tests.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fdxcmd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "fdx")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fdx: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	csvPath = filepath.Join(dir, "addresses.csv")
	var b strings.Builder
	b.WriteString("id,zip,city,state\n")
	for i := 0; i < 600; i++ {
		z := (i * 7) % 20
		fmt.Fprintf(&b, "r%d,z%d,c%d,s%d\n", i, z, z/2, z/6)
	}
	if err := os.WriteFile(csvPath, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the fdx binary and returns stdout, stderr, and exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return stdout.String(), stderr.String(), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("fdx failed to start: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String(), ee.ExitCode()
}

// fdLines extracts the per-dependency lines from a run's stdout.
func fdLines(out string) []string {
	var fds []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "(score ") {
			fds = append(fds, strings.TrimSpace(line))
		}
	}
	return fds
}

func TestUsageExitsTwo(t *testing.T) {
	if _, _, code := run(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if _, _, code := run(t, "stream", csvPath); code != 2 {
		t.Errorf("stream without -checkpoint: exit %d, want 2", code)
	}
}

func TestMissingInputExitsTwo(t *testing.T) {
	_, stderr, code := run(t, filepath.Join(t.TempDir(), "nope.csv"))
	if code != 2 {
		t.Errorf("exit %d, want 2\n%s", code, stderr)
	}
}

func TestDiscoverFindsDependencies(t *testing.T) {
	stdout, stderr, code := run(t, csvPath)
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "zip -> city") {
		t.Errorf("expected zip -> city in output:\n%s", stdout)
	}
}

// TestStreamResumeMatchesFreshRun is the CLI-level crash-equivalence
// check: a completed stream rerun against its own checkpoint resumes (no
// batches left) and prints the identical dependencies.
func TestStreamResumeMatchesFreshRun(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	args := []string{"stream", "-checkpoint", ckpt, "-batch", "100", "-every", "2", csvPath}
	fresh, stderr, code := run(t, args...)
	if code != 0 {
		t.Fatalf("fresh run: exit %d\n%s%s", code, fresh, stderr)
	}
	if len(fdLines(fresh)) == 0 {
		t.Fatalf("fresh run found no dependencies:\n%s", fresh)
	}
	resumed, stderr, code := run(t, args...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d\n%s%s", code, resumed, stderr)
	}
	if !strings.Contains(stderr, "resuming from") {
		t.Errorf("second run did not resume from the checkpoint; stderr:\n%s", stderr)
	}
	if a, b := fdLines(fresh), fdLines(resumed); !equalStrings(a, b) {
		t.Errorf("resumed dependencies differ:\nfresh:   %v\nresumed: %v", a, b)
	}
}

// TestStreamResumeAfterPartialCheckpoint snapshots a prefix of the stream
// via the library, then lets the CLI finish it; the result must match an
// uninterrupted CLI run.
func TestStreamResumeAfterPartialCheckpoint(t *testing.T) {
	full, stderr, code := run(t, "stream", "-checkpoint", filepath.Join(t.TempDir(), "ref.fdx"),
		"-batch", "100", "-every", "2", csvPath)
	if code != 0 {
		t.Fatalf("reference run: exit %d\n%s%s", code, full, stderr)
	}

	rel, err := fdx.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{})
	for b := 0; b < 3; b++ {
		if err := acc.Add(rel.Slice(b*100, (b+1)*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	resumed, stderr, code := run(t, "stream", "-checkpoint", ckpt, "-batch", "100", "-every", "2", csvPath)
	if code != 0 {
		t.Fatalf("resumed run: exit %d\n%s%s", code, resumed, stderr)
	}
	if !strings.Contains(stderr, "3 batches, 300 rows already absorbed") {
		t.Errorf("resume did not pick up the partial checkpoint; stderr:\n%s", stderr)
	}
	if a, b := fdLines(full), fdLines(resumed); !equalStrings(a, b) {
		t.Errorf("resumed dependencies differ:\nfull:    %v\nresumed: %v", a, b)
	}
}

func TestStreamGarbageCheckpointExitsThree(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	if err := os.WriteFile(ckpt, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := run(t, "stream", "-checkpoint", ckpt, csvPath)
	if code != 3 {
		t.Errorf("exit %d, want 3\n%s", code, stderr)
	}
}

func TestStreamSeedMismatchExitsTwo(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	if _, stderr, code := run(t, "stream", "-checkpoint", ckpt, "-seed", "1", csvPath); code != 0 {
		t.Fatalf("first run: exit %d\n%s", code, stderr)
	}
	_, stderr, code := run(t, "stream", "-checkpoint", ckpt, "-seed", "2", csvPath)
	if code != 2 {
		t.Errorf("exit %d, want 2\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "different options") {
		t.Errorf("stderr does not explain the mismatch:\n%s", stderr)
	}
}

// TestExitCode covers the taxonomy branches the binary tests cannot reach
// deterministically (cancellation, internal errors).
func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("outer: %w", fdx.ErrCancelled), 130},
		{fmt.Errorf("outer: %w: %w", fdx.ErrCancelled, context.Canceled), 130},
		{fmt.Errorf("outer: %w", fdx.ErrCorruptCheckpoint), 3},
		{fmt.Errorf("outer: %w", fdx.ErrCheckpointVersion), 3},
		{fmt.Errorf("outer: %w", fdx.ErrBadInput), 2},
		{fmt.Errorf("outer: %w", fdx.ErrInternal), 1},
		{errors.New("unclassified"), 1},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
