package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// traceDoc mirrors the Chrome trace-event file layout for decoding.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceFlagWritesValidTraceJSON runs discovery with -trace and checks
// the emitted file is a parseable Chrome trace covering the pipeline
// stages.
func TestTraceFlagWritesValidTraceJSON(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	stdout, stderr, code := run(t, "-trace", tracePath, csvPath)
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, stdout, stderr)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
		}
		seen[ev.Name] = true
	}
	for _, stage := range []string{"discover", "transform", "covariance", "glasso", "generate"} {
		if !seen[stage] {
			t.Errorf("trace has no %q span; got %v", stage, seen)
		}
	}
}

// TestMetricsEndpointDuringStream starts a throttled stream run with a
// live metrics listener and scrapes /metrics while batches are still being
// absorbed: the rows-absorbed counter must be present and growing.
func TestMetricsEndpointDuringStream(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	cmd := exec.Command(binPath, "stream",
		"-checkpoint", ckpt, "-batch", "50", "-batch-delay", "40ms",
		"-metrics-addr", "127.0.0.1:0", csvPath)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The binary prints its bound address before absorbing any batches.
	addrCh := make(chan string, 1)
	var stderrTail strings.Builder
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			stderrTail.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "fdx: metrics listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("no listener line on stderr:\n%s", stderrTail.String())
	}

	scrape := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return string(body), nil
	}

	// Poll /metrics while the run is live (the 40ms/batch throttle keeps it
	// running for well over a second).
	deadline := time.Now().Add(10 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		body, err := scrape("/metrics")
		if err == nil && strings.Contains(body, "fdx_rows_absorbed_total") &&
			!strings.Contains(body, "fdx_rows_absorbed_total 0\n") {
			got = body
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got == "" {
		t.Fatalf("never scraped a live fdx_rows_absorbed_total from /metrics")
	}
	if !strings.Contains(got, "fdx_wal_records_total") {
		t.Errorf("/metrics is missing the WAL counter:\n%s", got)
	}
	if body, err := scrape("/debug/vars"); err != nil {
		t.Errorf("/debug/vars: %v", err)
	} else if !strings.Contains(body, "\"fdx\"") {
		t.Errorf("/debug/vars does not publish the fdx registry:\n%.400s", body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("stream run failed: %v\n%s", err, stderrTail.String())
	}
}

// TestVerboseStreamProgress checks -v emits per-batch progress lines and a
// stage summary.
func TestVerboseStreamProgress(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.fdx")
	stdout, stderr, code := run(t, "stream", "-checkpoint", ckpt, "-batch", "100", "-v", csvPath)
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "rows/s") {
		t.Errorf("-v printed no progress lines; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "batch 1/6") {
		t.Errorf("-v progress lacks batch counters; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "discover") {
		t.Errorf("-v printed no stage summary; stderr:\n%s", stderr)
	}
}
