package main

// This file freezes the seed revision's Graphical Lasso solve loop as the
// reference the kernel-benchmark harness measures against. The optimized
// solver in internal/glasso shares the algorithm but not the code: it
// dispatches to fused/SIMD kernels, reuses pooled workspaces, and fans the
// per-column linear algebra out across workers. Benchmarking against this
// frozen copy keeps the "speedup vs seed" number honest across future
// refactors — do not modernize it.

import (
	"errors"
	"math"

	"fdx/internal/linalg"
)

// seedGlassoSolve is the seed block coordinate descent (Friedman, Hastie,
// Tibshirani 2008) verbatim: per-column extraction with At/Set element
// loops, an allocating inner lasso, and scalar dot products throughout.
// It returns the final covariance estimate W and the number of outer
// sweeps performed.
func seedGlassoSolve(s *linalg.Dense, lambda float64, maxIter int, tol float64, innerMaxIter int, innerTol float64) (*linalg.Dense, int, error) {
	k, _ := s.Dims()

	// W = S + λI is the initial covariance estimate.
	w := s.Clone()
	w.Symmetrize()
	for i := 0; i < k; i++ {
		w.Add(i, i, lambda)
	}

	// betas[j] holds the lasso coefficients for column j (length k, entry j
	// unused), warm-started across sweeps.
	betas := make([][]float64, k)
	for j := range betas {
		betas[j] = make([]float64, k)
	}

	w11 := linalg.NewDense(k-1, k-1)
	s12 := make([]float64, k-1)
	beta := make([]float64, k-1)

	iters := 0
	for sweep := 0; sweep < maxIter; sweep++ {
		iters = sweep + 1
		delta := 0.0
		for j := 0; j < k; j++ {
			// Extract W11 (drop row/col j) and s12 = S[−j, j].
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				s12[ai] = s.At(a, j)
				for b, bi := 0, 0; b < k; b++ {
					if b == j {
						continue
					}
					w11.Set(ai, bi, w.At(a, b))
					bi++
				}
				ai++
			}
			// Warm start from the previous sweep's solution.
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				beta[ai] = betas[j][a]
				ai++
			}
			seedLassoCD(w11, s12, lambda, beta, innerMaxIter, innerTol)
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				betas[j][a] = beta[ai]
				ai++
			}
			// w12 = W11·β; write it back into row/column j of W.
			for a, ai := 0, 0; a < k; a++ {
				if a == j {
					continue
				}
				v := 0.0
				row := w11.Row(ai)
				for bi := 0; bi < k-1; bi++ {
					v += row[bi] * beta[bi]
				}
				delta += math.Abs(w.At(a, j) - v)
				w.Set(a, j, v)
				w.Set(j, a, v)
				ai++
			}
		}
		if delta/float64(k*k) < tol {
			break
		}
	}

	// Recover Θ from the final W exactly as the seed did, so the measured
	// work covers the full fit.
	theta := linalg.NewDense(k, k)
	for j := 0; j < k; j++ {
		dot := 0.0
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			dot += w.At(a, j) * betas[j][a]
		}
		den := w.At(j, j) - dot
		if den <= 0 {
			return nil, iters, errors.New("seed glasso: non-positive partial variance")
		}
		tjj := 1 / den
		theta.Set(j, j, tjj)
		for a := 0; a < k; a++ {
			if a == j {
				continue
			}
			theta.Set(a, j, -betas[j][a]*tjj)
		}
	}
	theta.Symmetrize()
	return w, iters, nil
}

// seedLassoCD is the seed inner lasso: cyclic coordinate descent with a
// per-call gradient allocation and scalar update loops. Panics if Q is not
// p×p or beta is not length p.
// (fdx:numeric-kernel: frozen seed code — the exactly-unchanged-coordinate
// test skips a no-op gradient update, exactly as the live solver's does.)
func seedLassoCD(q *linalg.Dense, b []float64, lambda float64, beta []float64, maxIter int, tol float64) {
	p := len(b)
	if r, c := q.Dims(); r != p || c != p || len(beta) != p {
		panic("seed glasso: lassoCD operand shapes disagree")
	}
	// grad[i] = (Qβ)_i maintained incrementally.
	grad := make([]float64, p)
	for i := 0; i < p; i++ {
		row := q.Row(i)
		v := 0.0
		for j, bj := range beta {
			v += row[j] * bj
		}
		grad[i] = v
	}
	for it := 0; it < maxIter; it++ {
		maxChange := 0.0
		for i := 0; i < p; i++ {
			qii := q.At(i, i)
			if qii <= 0 {
				continue
			}
			// Residual gradient excluding β_i's own contribution.
			r := b[i] - (grad[i] - qii*beta[i])
			newBeta := seedSoftThreshold(r, lambda) / qii
			d := newBeta - beta[i]
			if d != 0 {
				beta[i] = newBeta
				col := q.Row(i) // symmetric: row i == column i
				for j := 0; j < p; j++ {
					grad[j] += col[j] * d
				}
				if a := math.Abs(d); a > maxChange {
					maxChange = a
				}
			}
		}
		if maxChange < tol {
			return
		}
	}
}

func seedSoftThreshold(x, lambda float64) float64 {
	switch {
	case x > lambda:
		return x - lambda
	case x < -lambda:
		return x + lambda
	default:
		return 0
	}
}
