package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fdx/internal/obs"
	"fdx/internal/serve"
	"fdx/internal/serve/limit"
)

// serveReport is the JSON schema of BENCH_serve.json: the fdxd service
// under a concurrent multi-tenant workload — ingest throughput over real
// HTTP, discover latency quantiles, and the shed rate once the server is
// deliberately overloaded.
type serveReport struct {
	Tenants          int     `json:"tenants"`
	BatchesPerTenant int     `json:"batches_per_tenant"`
	RowsPerBatch     int     `json:"rows_per_batch"`
	IngestRowsPerSec float64 `json:"ingest_rows_per_sec"`
	Discovers        int     `json:"discovers"`
	DiscoverP50Ms    float64 `json:"discover_p50_ms"`
	DiscoverP99Ms    float64 `json:"discover_p99_ms"`
	// Overload phase: a one-worker, depth-one queue plus a tight ingest
	// rate limit, hammered concurrently; shed = typed 429/503 responses.
	OverloadRequests int     `json:"overload_requests"`
	OverloadShed     int     `json:"overload_shed"`
	OverloadShedRate float64 `json:"overload_shed_rate"`
}

// benchServer runs an fdxd Server on a loopback listener and returns its
// base URL plus a shutdown func.
func benchServer(cfg serve.Config) (string, func(), error) {
	sv, err := serve.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := sv.HTTPServer("")
	go hs.Serve(ln)
	stop := func() {
		sv.Drain()
		hs.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func benchPost(client *http.Client, url, tenant string, body any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-Fdx-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func benchRows(n, offset int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		v := offset + i
		rows[i] = []string{
			fmt.Sprintf("a%d", v%7),
			fmt.Sprintf("b%d", (v%7)*3),
			fmt.Sprintf("c%d", v%4),
			fmt.Sprintf("d%d", (v%4)*5),
			fmt.Sprintf("e%d", v%3),
		}
	}
	return rows
}

var benchAttrs = []string{"a", "b", "c", "d", "e"}

// runServeBench measures the fdxd service end to end and writes the
// report to outPath. short reduces sizes for a CI smoke pass.
func runServeBench(outPath string, short bool) int {
	rep := serveReport{Tenants: 4, BatchesPerTenant: 48, RowsPerBatch: 256, Discovers: 32}
	if short {
		rep.BatchesPerTenant, rep.RowsPerBatch, rep.Discovers = 8, 64, 8
	}
	client := &http.Client{Timeout: 60 * time.Second}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}

	// Phase 1: concurrent multi-tenant ingest + discover, no quotas. The
	// registry is ours so the latency quantiles can be read back from the
	// server's own per-tenant histograms after the run.
	dir, err := os.MkdirTemp("", "fdxbench-serve")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	metrics := obs.NewRegistry()
	base, stop, err := benchServer(serve.Config{DataDir: dir, CheckpointEvery: 16, Metrics: metrics})
	if err != nil {
		return fail(err)
	}
	for ti := 0; ti < rep.Tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		code, err := benchPost(client, base+"/v1/sessions", tenant,
			map[string]any{"id": "bench-" + tenant, "attributes": benchAttrs})
		if err != nil || code != http.StatusCreated {
			stop()
			return fail(fmt.Errorf("create session (%d): %v", code, err))
		}
	}
	var wg sync.WaitGroup
	var ingestErr atomic.Value
	t0 := time.Now()
	for ti := 0; ti < rep.Tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := base + "/v1/sessions/bench-" + tenant + "/rows"
			for seq := 1; seq <= rep.BatchesPerTenant; seq++ {
				code, err := benchPost(client, url, tenant, map[string]any{
					"seq": seq, "rows": benchRows(rep.RowsPerBatch, (seq-1)*rep.RowsPerBatch)})
				if err != nil || code != http.StatusOK {
					ingestErr.Store(fmt.Errorf("ingest (%d): %v", code, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := ingestErr.Load().(error); ok {
		stop()
		return fail(err)
	}
	totalRows := rep.Tenants * rep.BatchesPerTenant * rep.RowsPerBatch
	rep.IngestRowsPerSec = float64(totalRows) / time.Since(t0).Seconds()

	// Discover latency quantiles: tenants issue discovers round-robin. The
	// quantiles come from the server's fdx_serve_discover_seconds{tenant=…}
	// histograms — the same series a dashboard reads — summed across
	// tenants, not from client-side stopwatches that fold in HTTP and
	// scheduling noise.
	for ti := 0; ti < rep.Tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := base + "/v1/sessions/bench-" + tenant + "/discover"
			for i := 0; i < rep.Discovers/rep.Tenants; i++ {
				code, err := benchPost(client, url, tenant, nil)
				if err != nil || code != http.StatusOK {
					ingestErr.Store(fmt.Errorf("discover (%d): %v", code, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	stop()
	if err, ok := ingestErr.Load().(error); ok {
		return fail(err)
	}
	var (
		cum   []uint64
		total uint64
	)
	for ti := 0; ti < rep.Tenants; ti++ {
		h := metrics.HistogramBuckets(
			obs.Labeled(obs.MServeDiscoverSeconds, "tenant", fmt.Sprintf("t%d", ti)), obs.ServeBuckets)
		_, c := h.Buckets()
		cum = obs.SumBuckets(cum, c)
		total += h.Count()
	}
	if int(total) != rep.Discovers {
		return fail(fmt.Errorf("discover histograms count %d observations, want %d", total, rep.Discovers))
	}
	rep.DiscoverP50Ms = obs.HistogramQuantile(obs.ServeBuckets, cum, total, 0.50) * 1000
	rep.DiscoverP99Ms = obs.HistogramQuantile(obs.ServeBuckets, cum, total, 0.99) * 1000

	// Phase 2: overload. One worker, depth-one queue, tight rate limit;
	// every shed must be a typed 429/503.
	dir2, err := os.MkdirTemp("", "fdxbench-serve-ovl")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir2)
	base, stop, err = benchServer(serve.Config{
		DataDir:         dir2,
		DiscoverWorkers: 1,
		QueueDepth:      1,
		Quotas:          limit.Quotas{RowsPerSecond: float64(rep.RowsPerBatch) * 4},
	})
	if err != nil {
		return fail(err)
	}
	defer stop()
	code, err := benchPost(client, base+"/v1/sessions", "ovl",
		map[string]any{"id": "ovl", "attributes": benchAttrs})
	if err != nil || code != http.StatusCreated {
		return fail(fmt.Errorf("create overload session (%d): %v", code, err))
	}
	if code, err = benchPost(client, base+"/v1/sessions/ovl/rows", "ovl",
		map[string]any{"seq": 1, "rows": benchRows(rep.RowsPerBatch, 0)}); err != nil || code != http.StatusOK {
		return fail(fmt.Errorf("seed overload session (%d): %v", code, err))
	}
	overloadTotal := 200
	if short {
		overloadTotal = 60
	}
	var shed, unexpected atomic.Int64
	sem := make(chan struct{}, 16)
	seq := 2
	for i := 0; i < overloadTotal; i++ {
		wg.Add(1)
		sem <- struct{}{}
		kind := i % 2
		mySeq := seq
		if kind == 0 {
			seq++
		}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var code int
			var err error
			if kind == 0 {
				code, err = benchPost(client, base+"/v1/sessions/ovl/rows", "ovl",
					map[string]any{"seq": mySeq, "rows": benchRows(rep.RowsPerBatch, 0)})
			} else {
				code, err = benchPost(client, base+"/v1/sessions/ovl/discover", "ovl", nil)
			}
			switch {
			case err != nil:
				unexpected.Add(1)
			case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
				shed.Add(1)
			case code != http.StatusOK && code != http.StatusConflict:
				// Conflict is expected: concurrent rows requests race on
				// seq. Anything else off-taxonomy is a failure.
				unexpected.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := unexpected.Load(); n > 0 {
		return fail(fmt.Errorf("overload phase saw %d unexpected responses", n))
	}
	rep.OverloadRequests = overloadTotal
	rep.OverloadShed = int(shed.Load())
	rep.OverloadShedRate = float64(rep.OverloadShed) / float64(overloadTotal)

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("serve bench: %.0f rows/s ingest, discover p50 %.1fms p99 %.1fms, overload shed %.0f%%\n",
		rep.IngestRowsPerSec, rep.DiscoverP50Ms, rep.DiscoverP99Ms, 100*rep.OverloadShedRate)
	fmt.Printf("report written to %s\n", outPath)
	return 0
}
