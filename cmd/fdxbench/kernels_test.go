package main

import (
	"math"
	"strings"
	"testing"

	"fdx/internal/glasso"
)

func gateReport() *kernelsReport {
	return &kernelsReport{
		Matmul: []matmulBench{
			{N: 64, NaiveMillis: 0.2, Speedup: 15},
			{N: 256, NaiveMillis: 12, Speedup: 10},
		},
		Glasso: []glassoBench{
			{P: 16, SeedMillis: 0.2, SpeedupVsSeed: 0.7},
			{P: 64, SeedMillis: 4, SpeedupVsSeed: 2.1},
		},
		Wide: []wideBench{
			{P: 256, DenseMillis: 0.4, ScreenedMillis: 0.1, SpeedupVsDense: 4, SpeedupWorkers: 1.0},
			{P: 1024, DenseMillis: 40, ScreenedMillis: 2.5, SpeedupVsDense: 16, SpeedupWorkers: 2.0},
		},
		Allocs: allocsBench{},
	}
}

func TestCompareKernelsPassesWithinSlack(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Matmul[1].Speedup = 9.2 // −8%, inside the 10% slack
	cur.Glasso[1].SpeedupVsSeed = 1.95
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("gate failed inside slack: %v", failures)
	}
}

func TestCompareKernelsFlagsRatioRegression(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Matmul[1].Speedup = 5
	cur.Glasso[1].SpeedupVsSeed = 1.0
	failures := compareKernels(cur, base)
	if len(failures) != 2 {
		t.Fatalf("want 2 failures (matmul n=256, glasso p=64), got %v", failures)
	}
	if !strings.Contains(failures[0], "matmul n=256") || !strings.Contains(failures[1], "glasso p=64") {
		t.Fatalf("unexpected failure set: %v", failures)
	}
}

func TestCompareKernelsSkipsNoisySizes(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	// Sub-millisecond baseline entries are timer noise and must not gate,
	// however badly their ratios move.
	cur.Matmul[0].Speedup = 1
	cur.Glasso[0].SpeedupVsSeed = 0.1
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("gate judged sub-millisecond sizes: %v", failures)
	}
}

func TestCompareKernelsFlagsAllocIncrease(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	cur.Allocs.GlassoSweepPerOp = 2
	failures := compareKernels(cur, base)
	if len(failures) != 1 || !strings.Contains(failures[0], "glasso_sweep_per_op") {
		t.Fatalf("want exactly the alloc failure, got %v", failures)
	}
}

func TestCompareKernelsSkipsMissingSizes(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	// A short CI run may omit the largest sizes; the gate only judges
	// sizes present in both reports.
	cur.Matmul = cur.Matmul[:1]
	cur.Glasso = cur.Glasso[:1]
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("gate judged sizes absent from the current report: %v", failures)
	}
}

func TestCompareKernelsParallelGateNeedsCoresOnBothSides(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	// Terrible parallel ratios, well-timed, but at least one side is
	// single-core: the workers gate must stay out of it.
	base.Glasso[1].SpeedupWorkers = 3
	base.Glasso[1].Workers1Millis = 9
	cur.Glasso[1].SpeedupWorkers = 0.5
	cur.Glasso[1].Workers1Millis = 9
	for _, procs := range [][2]int{{1, 1}, {1, 8}, {8, 1}} {
		cur.GoMaxProcs, cur.NumCPU = procs[0], procs[0]
		base.GoMaxProcs, base.NumCPU = procs[1], procs[1]
		for _, f := range compareKernels(cur, base) {
			// The relative (vs-baseline) gate needs cores on both sides.
			// The absolute floor still applies to a multi-core current run
			// — that one may fire in the {8,1} case.
			if strings.Contains(f, "below baseline") && strings.Contains(f, "parallel") {
				t.Fatalf("relative parallel gate ran at cur=%d base=%d cores: %v", procs[0], procs[1], f)
			}
			if procs[0] == 1 && strings.Contains(f, "parallel") {
				t.Fatalf("parallel gate judged a single-core run: %v", f)
			}
		}
	}
}

func TestCompareKernelsParallelGateOnMultiCore(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	base.GoMaxProcs, base.NumCPU = 8, 8
	cur.GoMaxProcs, cur.NumCPU = 8, 8
	base.Glasso[0].SpeedupWorkers = 1.0 // sub-millisecond: skipped
	base.Glasso[1].SpeedupWorkers = 3.0
	base.Glasso[1].Workers1Millis = 9
	cur.Glasso[1].Workers1Millis = 9
	base.Wide[1].SpeedupWorkers = 3.0

	// Inside slack and above the absolute floor: clean.
	cur.Glasso[1].SpeedupWorkers = 2.8
	cur.Wide[1].SpeedupWorkers = 2.8
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("multi-core gate failed inside slack: %v", failures)
	}
	// Fan-out silently serialized: the glasso and wide relative gates and
	// the wide absolute floor all fire.
	cur.Glasso[1].SpeedupWorkers = 1.0
	cur.Wide[1].SpeedupWorkers = 1.0
	failures := compareKernels(cur, base)
	if len(failures) != 3 ||
		!strings.Contains(failures[0], "glasso p=64") || !strings.Contains(failures[0], "below baseline") ||
		!strings.Contains(failures[1], "wide p=1024") || !strings.Contains(failures[1], "below baseline") ||
		!strings.Contains(failures[2], "want >= 1.05") {
		t.Fatalf("want relative + absolute parallel failures, got %v", failures)
	}
}

// TestCompareKernelsAbsoluteGateIgnoresBaselineCores pins the fix for
// parallel regressions hiding behind a single-core baseline: a
// multi-core current run owes the absolute wide-section speedup floor
// even when the committed baseline was recorded on one CPU (where every
// relative workers gate is rightly disarmed).
func TestCompareKernelsAbsoluteGateIgnoresBaselineCores(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	base.GoMaxProcs, base.NumCPU = 1, 1
	cur.GoMaxProcs, cur.NumCPU = 8, 8
	base.Wide[1].SpeedupWorkers = 1.0 // recorded serialized — legitimately
	cur.Wide[1].SpeedupWorkers = 1.0  // but an 8-core run may not match it
	failures := compareKernels(cur, base)
	if len(failures) != 1 || !strings.Contains(failures[0], "want >= 1.05") {
		t.Fatalf("want exactly the absolute wide parallel failure, got %v", failures)
	}
	cur.Wide[1].SpeedupWorkers = 1.4
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("absolute gate fired above the floor: %v", failures)
	}
}

func TestCompareKernelsFlagsScreeningRegression(t *testing.T) {
	base := gateReport()
	cur := gateReport()
	// Screening win collapsed at a reliably-timed size.
	cur.Wide[1].SpeedupVsDense = 2
	failures := compareKernels(cur, base)
	if len(failures) != 1 || !strings.Contains(failures[0], "wide p=1024") {
		t.Fatalf("want exactly the wide screening failure, got %v", failures)
	}
	// The sub-millisecond wide size must not gate.
	cur = gateReport()
	cur.Wide[0].SpeedupVsDense = 0.5
	if failures := compareKernels(cur, base); len(failures) != 0 {
		t.Fatalf("gate judged a sub-millisecond wide size: %v", failures)
	}
}

// TestSeedGlassoAgreesWithSolver pins the frozen seed reference to the live
// solver: same covariance, same hyper-parameters, covariance estimates
// within solver tolerance of each other. If the live solver's algorithm
// drifts, the benchmark would silently compare unlike quantities.
func TestSeedGlassoAgreesWithSolver(t *testing.T) {
	s := benchCovariance(24)
	wSeed, iters, err := seedGlassoSolve(s, 0.1, 100, 1e-5, 200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("seed solver reported %d sweeps", iters)
	}
	res, err := glasso.Solve(s, glasso.Options{Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := s.Dims()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			d := math.Abs(wSeed.At(i, j) - res.Covariance.At(i, j))
			if d > 1e-4 {
				t.Fatalf("W[%d,%d]: seed %v vs solver %v (|Δ|=%g)", i, j, wSeed.At(i, j), res.Covariance.At(i, j), d)
			}
		}
	}
}
