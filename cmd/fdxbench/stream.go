package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fdx"
	"fdx/internal/synth"
)

// streamReport is the JSON schema of BENCH_stream.json: throughput of the
// durable streaming path (WAL-logged absorption, snapshot save, restore).
type streamReport struct {
	Rows             int     `json:"rows"`
	Attributes       int     `json:"attributes"`
	BatchRows        int     `json:"batch_rows"`
	SaveEvery        int     `json:"save_every_batches"`
	AbsorbRowsPerSec float64 `json:"absorb_rows_per_sec"`
	LoggedRowsPerSec float64 `json:"logged_rows_per_sec"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	SnapshotMillis   float64 `json:"snapshot_ms"`
	RestoreMillis    float64 `json:"restore_ms"`
	DiscoverMillis   float64 `json:"discover_ms"`
	// StageMillis breaks the discover run into its traced pipeline stages
	// (covariance, fit, order-search, generate, ...).
	StageMillis map[string]float64 `json:"stage_ms"`
	// Shards is the shard-merge scaling section (-shards): the same batch
	// grid absorbed across N in-memory shards, then tree-merged.
	Shards []shardBench `json:"shards,omitempty"`
}

// shardBench is one row of the shard scaling section. On a single-CPU
// runner the shards absorb serially, so absorb throughput stays flat and
// the interesting number is the merge cost; with real cores the absorb
// column shows the scale-out headroom.
type shardBench struct {
	Shards           int     `json:"shards"`
	AbsorbRowsPerSec float64 `json:"absorb_rows_per_sec"`
	MergeMillis      float64 `json:"merge_ms"`
	TotalRowsPerSec  float64 `json:"total_rows_per_sec"`
}

// benchShards measures sharded absorption and the deterministic tree
// merge at several shard counts, verifying the merged grid is complete.
func benchShards(rel *fdx.Relation, opts fdx.Options, batchRows, total int) ([]shardBench, error) {
	var out []shardBench
	for _, n := range []int{1, 2, 4} {
		t0 := time.Now()
		accs := make([]*fdx.Accumulator, 0, n)
		for _, span := range fdx.ShardSpans(total, n) {
			acc := fdx.NewAccumulator(rel.AttrNames(), opts)
			for g := span.Lo; g < span.Hi; g++ {
				if err := acc.AddAt(rel.Slice(g*batchRows, (g+1)*batchRows), g); err != nil {
					return nil, err
				}
			}
			accs = append(accs, acc)
		}
		absorbSec := time.Since(t0).Seconds()
		t0 = time.Now()
		merged, err := fdx.MergeShards(accs, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, err
		}
		mergeSec := time.Since(t0).Seconds()
		if merged.Batches() != total {
			return nil, fmt.Errorf("shards=%d: merged %d batches, want %d", n, merged.Batches(), total)
		}
		rows := float64(total * batchRows)
		out = append(out, shardBench{
			Shards:           n,
			AbsorbRowsPerSec: rows / absorbSec,
			MergeMillis:      mergeSec * 1e3,
			TotalRowsPerSec:  rows / (absorbSec + mergeSec),
		})
	}
	return out, nil
}

// runStreamBench measures the checkpoint subsystem end to end — in-memory
// absorption, WAL-logged absorption (one fsync per batch), durable
// snapshot saves, and restore — plus, with withShards, the shard-merge
// scaling section, and writes the report to outPath.
func runStreamBench(outPath string, seed int64, fast, withShards bool) int {
	rows, batchRows, saveEvery := 200_000, 1024, 16
	if fast {
		rows = 20_000
	}
	inst := synth.Generate(synth.Config{
		Seed:              seed,
		Tuples:            rows,
		Attributes:        12,
		DomainCardinality: 144,
		NoiseRate:         0.01,
	})
	rel := inst.Relation
	opts := fdx.Options{Seed: seed}
	total := rel.NumRows() / batchRows

	// Baseline: in-memory absorption without durability.
	plain := fdx.NewAccumulator(rel.AttrNames(), opts)
	t0 := time.Now()
	for b := 0; b < total; b++ {
		if err := plain.Add(rel.Slice(b*batchRows, (b+1)*batchRows)); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench:", err)
			return 1
		}
	}
	absorbSec := time.Since(t0).Seconds()

	// Durable streaming: WAL append per batch, snapshot every saveEvery.
	dir, err := os.MkdirTemp("", "fdxbench-stream")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "state.fdx")
	acc := fdx.NewAccumulator(rel.AttrNames(), opts)
	wal, err := fdx.OpenWAL(ckpt + fdx.WALSuffix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	defer wal.Close()
	var snapTotal time.Duration
	saves := 0
	t0 = time.Now()
	for b := 0; b < total; b++ {
		if err := acc.AddLogged(rel.Slice(b*batchRows, (b+1)*batchRows), wal); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench:", err)
			return 1
		}
		if (b+1)%saveEvery == 0 {
			ts := time.Now()
			if err := acc.SaveCheckpoint(ckpt); err != nil {
				fmt.Fprintln(os.Stderr, "fdxbench:", err)
				return 1
			}
			if err := wal.Reset(); err != nil {
				fmt.Fprintln(os.Stderr, "fdxbench:", err)
				return 1
			}
			snapTotal += time.Since(ts)
			saves++
		}
	}
	loggedSec := time.Since(t0).Seconds()
	ts := time.Now()
	if err := acc.SaveCheckpoint(ckpt); err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	snapTotal += time.Since(ts)
	saves++
	info, err := os.Stat(ckpt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}

	// Telemetry never changes results, so the tracer rides the same options
	// (it is excluded from the checkpoint fingerprint).
	opts.Tracer = fdx.NewTracer()
	t0 = time.Now()
	restored, err := fdx.LoadCheckpoint(ckpt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	restoreMs := float64(time.Since(t0).Microseconds()) / 1e3
	if restored.Rows() != total*batchRows {
		fmt.Fprintf(os.Stderr, "fdxbench: restore lost rows: %d != %d\n", restored.Rows(), total*batchRows)
		return 1
	}

	t0 = time.Now()
	res, err := restored.Discover()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	discoverMs := float64(time.Since(t0).Microseconds()) / 1e3
	stageMs := make(map[string]float64, len(res.StageTimings))
	for _, st := range res.StageTimings {
		stageMs[st.Stage] = float64(st.Duration.Microseconds()) / 1e3
	}

	rep := streamReport{
		Rows:             total * batchRows,
		Attributes:       rel.NumCols(),
		BatchRows:        batchRows,
		SaveEvery:        saveEvery,
		AbsorbRowsPerSec: float64(total*batchRows) / absorbSec,
		LoggedRowsPerSec: float64(total*batchRows) / loggedSec,
		SnapshotBytes:    info.Size(),
		SnapshotMillis:   float64(snapTotal.Microseconds()) / 1e3 / float64(saves),
		RestoreMillis:    restoreMs,
		DiscoverMillis:   discoverMs,
		StageMillis:      stageMs,
	}
	if withShards {
		shards, err := benchShards(rel, fdx.Options{Seed: seed}, batchRows, total)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench:", err)
			return 1
		}
		rep.Shards = shards
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	fmt.Printf("stream benchmark: %s\n%s", outPath, out)
	return 0
}
