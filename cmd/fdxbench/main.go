// Command fdxbench regenerates the tables and figures of the FDX paper's
// evaluation section.
//
// Usage:
//
//	fdxbench -exp table4          # one experiment
//	fdxbench -exp all             # the full suite
//	fdxbench -exp all -fast       # reduced sizes for a quick pass
//
// Each experiment prints the same rows/series the paper reports; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fdx/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1..table9, figure2..figure7, ablation, all)")
		fast    = flag.Bool("fast", false, "reduced data sizes and timeouts")
		seed    = flag.Int64("seed", 1, "random seed for data generation")
		timeout = flag.Duration("timeout", 0, "per-method timeout (0 = scale default)")
		verbose = flag.Bool("v", false, "log per-method progress to stderr")
		format  = flag.String("format", "text", "output format: text | json")
		stream  = flag.String("stream", "", "run the checkpoint streaming benchmark and write its JSON report to this path")
		srv     = flag.String("serve", "", "run the fdxd service benchmark and write its JSON report to this path")
		kernels = flag.String("kernels", "", "run the numeric-kernel benchmark and write its JSON report to this path")
		compare = flag.String("compare", "", "with -kernels: baseline report to gate against (>10% speedup-ratio regression or any alloc increase exits non-zero)")
		short   = flag.Bool("short", false, "with -kernels: reduced sizes and repetitions for a CI smoke pass")
		wide    = flag.Bool("wide", false, "with -kernels: include the wide-schema screened-glasso section (p up to 1024)")
		shards  = flag.Bool("shards", false, "with -stream: include the shard-merge scaling section")
	)
	flag.Parse()
	if *stream != "" {
		os.Exit(runStreamBench(*stream, *seed, *fast, *shards))
	}
	if *srv != "" {
		os.Exit(runServeBench(*srv, *short))
	}
	if *kernels != "" {
		os.Exit(runKernelBench(*kernels, *compare, *short, *wide))
	}
	cfg := experiments.Config{Seed: *seed, Fast: *fast, Timeout: *timeout}
	if *verbose {
		cfg.Log = os.Stderr
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if *format == "json" {
			out, err := experiments.RunJSON(name, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdxbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			continue
		}
		out, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdxbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (completed in %v) ===\n\n%s\n", name, time.Since(start).Round(time.Millisecond), out)
	}
}
