package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"fdx"
	"fdx/internal/glasso"
	"fdx/internal/linalg"
	"fdx/internal/synth"
)

// kernelsReport is the JSON schema of BENCH_kernels.json: throughput of the
// numeric kernel layer (blocked matmul, the parallel Graphical Lasso, the
// accumulator's absorb path) plus the steady-state allocation counts the
// zero-alloc refactor pins at zero.
//
// The regression gate (-compare) only judges quantities that are stable
// across machines: same-run speedup ratios (each computed from two
// measurements taken seconds apart on the same CPU) and allocation counts.
// Absolute milliseconds and rows/s are recorded for humans, never gated.
type kernelsReport struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU records the machine's core count: together with gomaxprocs it
	// keys whether the parallel-speedup gate applies (a 1-CPU runner can
	// execute workers=8, but the fan-out serializes and the ratio is
	// meaningless).
	NumCPU int           `json:"num_cpu"`
	Simd   bool          `json:"simd"`
	Short  bool          `json:"short"`
	Matmul []matmulBench `json:"matmul"`
	Glasso []glassoBench `json:"glasso"`
	Absorb absorbBench   `json:"absorb"`
	Allocs allocsBench   `json:"allocs"`
}

type matmulBench struct {
	N             int     `json:"n"`
	BlockedMillis float64 `json:"blocked_ms"`
	NaiveMillis   float64 `json:"naive_ms"`
	BlockedGflops float64 `json:"blocked_gflops"`
	NaiveGflops   float64 `json:"naive_gflops"`
	// Speedup is blocked vs the frozen seed triple-loop kernel
	// (linalg.MulNaive), both measured in this run.
	Speedup float64 `json:"speedup_vs_naive"`
}

type glassoBench struct {
	P              int     `json:"p"`
	Sweeps         int     `json:"sweeps"`
	SeedMillis     float64 `json:"seed_ms"`
	Workers1Millis float64 `json:"workers1_ms"`
	Workers8Millis float64 `json:"workers8_ms"`
	// SpeedupVsSeed is the frozen seed solver (cmd/fdxbench/seedref.go)
	// vs the optimized solver at Workers=8, both measured in this run.
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
	// SpeedupWorkers is Workers=1 vs Workers=8 wall clock. On a
	// single-CPU runner this hovers near 1.0 (the fan-out still runs,
	// serialized); it only separates from 1 with real cores.
	SpeedupWorkers float64 `json:"speedup_workers"`
}

type absorbBench struct {
	Rows       int     `json:"rows"`
	Attributes int     `json:"attributes"`
	BatchRows  int     `json:"batch_rows"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// allocsBench holds steady-state allocations per operation, measured with
// testing.AllocsPerRun after warm-up so every sync.Pool is primed.
type allocsBench struct {
	// MulToPerOp is allocations per MulTo call into a caller-owned result.
	MulToPerOp float64 `json:"mul_to_per_op"`
	// AxpyDotPerOp is allocations per fused Axpy+Dot pair.
	AxpyDotPerOp float64 `json:"axpy_dot_per_op"`
	// GlassoSweepPerOp is the marginal allocations per additional outer
	// sweep of glasso.Solve (the difference between a long and a short
	// solve divided by the extra sweeps), isolating the sweep loop from
	// per-solve setup.
	GlassoSweepPerOp float64 `json:"glasso_sweep_per_op"`
}

// runKernelBench measures the kernel layer, writes the JSON report to
// outPath, and — when basePath is non-empty — gates against the baseline
// report, returning non-zero on a regression.
func runKernelBench(outPath, basePath string, short bool) int {
	// Load the baseline up front: outPath and basePath may be the same
	// file ("gate against the last committed run, then refresh it"), so
	// the baseline must be read before the report is written.
	var base *kernelsReport
	if basePath != "" {
		var err error
		base, err = loadKernelsReport(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench:", err)
			return 1
		}
	}
	rep := kernelsReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Simd:       linalg.SimdEnabled(),
		Short:      short,
	}

	matReps, glassoReps := 5, 3
	if short {
		matReps, glassoReps = 2, 2
	}
	for _, n := range []int{64, 128, 256} {
		rep.Matmul = append(rep.Matmul, benchMatmul(n, matReps))
	}
	ps := []int{16, 32, 64, 128}
	if short {
		ps = []int{16, 32, 64}
	}
	for _, p := range ps {
		rep.Glasso = append(rep.Glasso, benchGlasso(p, glassoReps))
	}
	rep.Absorb = benchAbsorb(short)
	rep.Allocs = benchAllocs()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	fmt.Printf("kernel benchmark: %s\n%s", outPath, out)

	if base == nil {
		return 0
	}
	failures := compareKernels(&rep, base)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "fdxbench: REGRESSION:", f)
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Printf("compare vs %s: ok\n", basePath)
	return 0
}

// bestOf returns the fastest of reps timed runs of f — the standard defense
// against scheduler noise on shared runners.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

func benchMatmul(n, reps int) matmulBench {
	rng := rand.New(rand.NewSource(int64(n)))
	a := linalg.NewDense(n, n)
	b := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
			b.Set(i, j, rng.NormFloat64())
		}
	}
	c := linalg.NewDense(n, n)
	linalg.MulTo(c, a, b) // warm the packing pool

	blocked := bestOf(reps, func() { linalg.MulTo(c, a, b) })
	naive := bestOf(reps, func() { linalg.MulNaive(a, b) })
	flops := 2 * float64(n) * float64(n) * float64(n)
	return matmulBench{
		N:             n,
		BlockedMillis: float64(blocked.Microseconds()) / 1e3,
		NaiveMillis:   float64(naive.Microseconds()) / 1e3,
		BlockedGflops: flops / blocked.Seconds() / 1e9,
		NaiveGflops:   flops / naive.Seconds() / 1e9,
		Speedup:       naive.Seconds() / blocked.Seconds(),
	}
}

// benchCovariance builds a deterministic well-conditioned SPD matrix of
// order p: S = GᵀG/p + I/2 for a Gaussian factor G.
func benchCovariance(p int) *linalg.Dense {
	rng := rand.New(rand.NewSource(int64(p) * 7919))
	g := linalg.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	s := linalg.MulTo(linalg.NewDense(p, p), g.Transpose(), g)
	s.Scale(1 / float64(p))
	for i := 0; i < p; i++ {
		s.Add(i, i, 0.5)
	}
	s.Symmetrize()
	return s
}

func benchGlasso(p, reps int) glassoBench {
	s := benchCovariance(p)
	const lambda = 0.1
	opts := glasso.Options{Lambda: lambda}

	sweeps := 0
	solve := func(workers int) func() {
		return func() {
			o := opts
			o.Workers = workers
			res, err := glasso.Solve(s, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdxbench: glasso:", err)
				os.Exit(1)
			}
			sweeps = res.Iterations
		}
	}
	// The seed reference runs with the same hyper-parameters the live
	// solver defaults to (MaxIter 100, Tol 1e-5, inner 200/1e-6).
	seedSolve := func() {
		if _, _, err := seedGlassoSolve(s, lambda, 100, 1e-5, 200, 1e-6); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: seed glasso:", err)
			os.Exit(1)
		}
	}
	// Warm every variant before timing: the first call grows the heap (and,
	// for the optimized solver, primes the workspace pool), which would
	// otherwise be billed to whichever variant ran first.
	solve(1)()
	solve(8)()
	seedSolve()
	w1 := bestOf(reps, solve(1))
	w8 := bestOf(reps, solve(8))
	seed := bestOf(reps, seedSolve)
	return glassoBench{
		P:              p,
		Sweeps:         sweeps,
		SeedMillis:     float64(seed.Microseconds()) / 1e3,
		Workers1Millis: float64(w1.Microseconds()) / 1e3,
		Workers8Millis: float64(w8.Microseconds()) / 1e3,
		SpeedupVsSeed:  seed.Seconds() / w8.Seconds(),
		SpeedupWorkers: w1.Seconds() / w8.Seconds(),
	}
}

func benchAbsorb(short bool) absorbBench {
	rows, batchRows := 100_000, 1024
	if short {
		rows = 10_000
	}
	inst := synth.Generate(synth.Config{
		Seed:              1,
		Tuples:            rows,
		Attributes:        12,
		DomainCardinality: 144,
		NoiseRate:         0.01,
	})
	rel := inst.Relation
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{Seed: 1, Workers: runtime.GOMAXPROCS(0)})
	total := rel.NumRows() / batchRows
	t0 := time.Now()
	for b := 0; b < total; b++ {
		if err := acc.Add(rel.Slice(b*batchRows, (b+1)*batchRows)); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: absorb:", err)
			os.Exit(1)
		}
	}
	sec := time.Since(t0).Seconds()
	return absorbBench{
		Rows:       total * batchRows,
		Attributes: rel.NumCols(),
		BatchRows:  batchRows,
		RowsPerSec: float64(total*batchRows) / sec,
	}
}

func benchAllocs() allocsBench {
	// MulTo into a caller-owned result, pools warm.
	n := 96
	a, b, c := linalg.NewDense(n, n), linalg.NewDense(n, n), linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b.Set(i, i, 2)
	}
	linalg.MulTo(c, a, b)
	mulAllocs := testing.AllocsPerRun(10, func() { linalg.MulTo(c, a, b) })

	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(1024 - i)
	}
	sink := 0.0
	vecAllocs := testing.AllocsPerRun(10, func() {
		linalg.Axpy(0.5, x, y)
		sink += linalg.Dot(x, y)
	})
	_ = sink

	// Marginal allocations per extra glasso sweep: force exact sweep
	// counts with a tolerance the delta can never reach (except by
	// becoming exactly zero, i.e. the fixed point, which allocates
	// nothing either), then difference a long solve against a short one.
	s := benchCovariance(32)
	solveSweeps := func(maxIter int) (*glasso.Result, error) {
		return glasso.Solve(s, glasso.Options{Lambda: 0.1, MaxIter: maxIter, Tol: 1e-300, Workers: 1})
	}
	resShort, err1 := solveSweeps(2)
	resLong, err2 := solveSweeps(12)
	if err1 != nil || err2 != nil {
		fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err1, err2)
		os.Exit(1)
	}
	extra := resLong.Iterations - resShort.Iterations
	if extra <= 0 {
		extra = 1
	}
	aShort := testing.AllocsPerRun(5, func() {
		if _, err := solveSweeps(2); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err)
			os.Exit(1)
		}
	})
	aLong := testing.AllocsPerRun(5, func() {
		if _, err := solveSweeps(12); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err)
			os.Exit(1)
		}
	})
	perSweep := (aLong - aShort) / float64(extra)
	if perSweep < 0 {
		perSweep = 0
	}
	return allocsBench{
		MulToPerOp:       mulAllocs,
		AxpyDotPerOp:     vecAllocs,
		GlassoSweepPerOp: perSweep,
	}
}

func loadKernelsReport(path string) (*kernelsReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep kernelsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareRatioSlack is how much a same-run speedup ratio may shrink versus
// the baseline before the gate fails: 10%.
const compareRatioSlack = 0.9

// compareMinMillis is the floor under the baseline's reference-kernel time
// for a size to participate in the gate: sub-millisecond measurements are
// dominated by timer and scheduler noise, and a ratio of two noisy numbers
// flaps regardless of slack.
const compareMinMillis = 1.0

// minParallelSpeedup is the absolute workers1-vs-workers8 floor a
// multi-core run must clear at its largest reliably-timed glasso size.
// Deliberately modest: the gate exists to catch the fan-out silently
// serializing, not to demand linear scaling.
const minParallelSpeedup = 1.05

// multiCore reports whether a run had real parallelism available.
func multiCore(r *kernelsReport) bool {
	return r.GoMaxProcs > 1 && (r.NumCPU > 1 || r.NumCPU == 0)
}

// compareKernels gates the fresh report against a baseline. Only
// machine-portable quantities are judged: speedup ratios (with 10% slack
// for noise) and steady-state allocation counts (exact — any increase is a
// regression). Sizes present in only one report — or too small to time
// reliably (see compareMinMillis) — are skipped, so a short CI run can
// gate against a full committed baseline.
func compareKernels(cur, base *kernelsReport) []string {
	var failures []string
	for _, bm := range base.Matmul {
		if bm.NaiveMillis < compareMinMillis {
			continue
		}
		for _, cm := range cur.Matmul {
			if cm.N != bm.N {
				continue
			}
			if cm.Speedup < bm.Speedup*compareRatioSlack {
				failures = append(failures, fmt.Sprintf(
					"matmul n=%d: blocked-vs-naive speedup %.2fx fell more than 10%% below baseline %.2fx",
					cm.N, cm.Speedup, bm.Speedup))
			}
		}
	}
	for _, bg := range base.Glasso {
		if bg.SeedMillis < compareMinMillis {
			continue
		}
		for _, cg := range cur.Glasso {
			if cg.P != bg.P {
				continue
			}
			if cg.SpeedupVsSeed < bg.SpeedupVsSeed*compareRatioSlack {
				failures = append(failures, fmt.Sprintf(
					"glasso p=%d: speedup vs seed %.2fx fell more than 10%% below baseline %.2fx",
					cg.P, cg.SpeedupVsSeed, bg.SpeedupVsSeed))
			}
		}
	}
	// Parallel speedup needs real cores behind it before its ratio means
	// anything: workers1-vs-workers8 is gated only when BOTH runs were
	// multi-core (keyed by gomaxprocs/num_cpu), so a single-CPU runner
	// neither flaps the gate nor launders a parallel regression into the
	// baseline. A multi-core current run additionally owes an absolute
	// speedup at the largest reliably-timed size — the glasso fan-out must
	// actually buy wall clock, not just avoid regressing.
	if multiCore(cur) && multiCore(base) {
		for _, bg := range base.Glasso {
			if bg.Workers1Millis < compareMinMillis {
				continue
			}
			for _, cg := range cur.Glasso {
				if cg.P != bg.P {
					continue
				}
				if cg.SpeedupWorkers < bg.SpeedupWorkers*compareRatioSlack {
					failures = append(failures, fmt.Sprintf(
						"glasso p=%d: parallel speedup %.2fx fell more than 10%% below baseline %.2fx",
						cg.P, cg.SpeedupWorkers, bg.SpeedupWorkers))
				}
			}
		}
	}
	if multiCore(cur) {
		var largest *glassoBench
		for i := range cur.Glasso {
			if cur.Glasso[i].Workers1Millis >= compareMinMillis {
				largest = &cur.Glasso[i]
			}
		}
		if largest != nil && largest.SpeedupWorkers < minParallelSpeedup {
			failures = append(failures, fmt.Sprintf(
				"glasso p=%d: parallel speedup %.2fx on a %d-core run, want >= %.2fx",
				largest.P, largest.SpeedupWorkers, cur.GoMaxProcs, minParallelSpeedup))
		}
	}
	type allocGate struct {
		name     string
		cur, old float64
	}
	for _, g := range []allocGate{
		{"mul_to_per_op", cur.Allocs.MulToPerOp, base.Allocs.MulToPerOp},
		{"axpy_dot_per_op", cur.Allocs.AxpyDotPerOp, base.Allocs.AxpyDotPerOp},
		{"glasso_sweep_per_op", cur.Allocs.GlassoSweepPerOp, base.Allocs.GlassoSweepPerOp},
	} {
		if g.cur > g.old {
			failures = append(failures, fmt.Sprintf(
				"allocs %s: %.1f allocs/op, baseline %.1f (alloc counts are gated exactly)",
				g.name, g.cur, g.old))
		}
	}
	return failures
}
