package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"fdx"
	"fdx/internal/glasso"
	"fdx/internal/linalg"
	"fdx/internal/synth"
)

// kernelsReport is the JSON schema of BENCH_kernels.json: throughput of the
// numeric kernel layer (blocked matmul, the parallel Graphical Lasso, the
// accumulator's absorb path) plus the steady-state allocation counts the
// zero-alloc refactor pins at zero.
//
// The regression gate (-compare) only judges quantities that are stable
// across machines: same-run speedup ratios (each computed from two
// measurements taken seconds apart on the same CPU) and allocation counts.
// Absolute milliseconds and rows/s are recorded for humans, never gated.
type kernelsReport struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU records the machine's core count: together with gomaxprocs it
	// keys whether the parallel-speedup gate applies (a 1-CPU runner can
	// execute workers=8, but the fan-out serializes and the ratio is
	// meaningless).
	NumCPU int           `json:"num_cpu"`
	Simd   bool          `json:"simd"`
	Short  bool          `json:"short"`
	Matmul []matmulBench `json:"matmul"`
	Glasso []glassoBench `json:"glasso"`
	// Wide measures the covariance-screened block solver on planted
	// block-structured matrices at widths the dense solver cannot touch
	// economically (-wide; empty when the section did not run).
	Wide   []wideBench `json:"wide,omitempty"`
	Absorb absorbBench `json:"absorb"`
	Allocs allocsBench `json:"allocs"`
}

type matmulBench struct {
	N             int     `json:"n"`
	BlockedMillis float64 `json:"blocked_ms"`
	NaiveMillis   float64 `json:"naive_ms"`
	BlockedGflops float64 `json:"blocked_gflops"`
	NaiveGflops   float64 `json:"naive_gflops"`
	// Speedup is blocked vs the frozen seed triple-loop kernel
	// (linalg.MulNaive), both measured in this run.
	Speedup float64 `json:"speedup_vs_naive"`
}

type glassoBench struct {
	P              int     `json:"p"`
	Sweeps         int     `json:"sweeps"`
	SeedMillis     float64 `json:"seed_ms"`
	Workers1Millis float64 `json:"workers1_ms"`
	Workers8Millis float64 `json:"workers8_ms"`
	// SpeedupVsSeed is the frozen seed solver (cmd/fdxbench/seedref.go)
	// vs the optimized solver at Workers=8, both measured in this run.
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
	// SpeedupWorkers is Workers=1 vs Workers=8 wall clock. On a
	// single-CPU runner this hovers near 1.0 (the fan-out still runs,
	// serialized); it only separates from 1 with real cores.
	SpeedupWorkers float64 `json:"speedup_workers"`
}

// wideBench measures one wide-schema size on a planted block-structured
// covariance (SPD blocks of 64, cross-block entries at most λ in
// magnitude): the historical dense path (NoScreen), the screened
// block-diagonal solve at Workers=1, and the screened solve with the
// block fan-out at Workers=8. All three run a pinned sweep budget so the
// ratios compare identical arithmetic.
type wideBench struct {
	P      int     `json:"p"`
	Lambda float64 `json:"lambda"`
	// Blocks and ScreenedRatio describe what the screening pass found:
	// the connected-component count and the fraction of precision
	// entries proved zero without arithmetic (1 − Σ|block|²/p²).
	Blocks        int     `json:"blocks"`
	ScreenedRatio float64 `json:"screened_ratio"`
	Sweeps        int     `json:"sweeps"`
	DenseMillis   float64 `json:"dense_ms"`
	// ScreenedMillis is the screened solve at Workers=1 — the screening
	// win alone, no parallelism.
	ScreenedMillis float64 `json:"screened_ms"`
	// ParallelMillis is the screened solve at Workers=8.
	ParallelMillis float64 `json:"parallel_ms"`
	// SpeedupVsDense is dense vs screened at Workers=1, both measured in
	// this run — machine-portable, gated against the baseline.
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
	// SpeedupWorkers is screened Workers=1 vs Workers=8 wall clock. On a
	// multi-core run this must clear the absolute floor regardless of
	// what machine recorded the baseline (see compareKernels).
	SpeedupWorkers float64 `json:"speedup_workers"`
}

type absorbBench struct {
	Rows       int     `json:"rows"`
	Attributes int     `json:"attributes"`
	BatchRows  int     `json:"batch_rows"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// allocsBench holds steady-state allocations per operation, measured with
// testing.AllocsPerRun after warm-up so every sync.Pool is primed.
type allocsBench struct {
	// MulToPerOp is allocations per MulTo call into a caller-owned result.
	MulToPerOp float64 `json:"mul_to_per_op"`
	// AxpyDotPerOp is allocations per fused Axpy+Dot pair.
	AxpyDotPerOp float64 `json:"axpy_dot_per_op"`
	// GlassoSweepPerOp is the marginal allocations per additional outer
	// sweep of glasso.Solve (the difference between a long and a short
	// solve divided by the extra sweeps), isolating the sweep loop from
	// per-solve setup.
	GlassoSweepPerOp float64 `json:"glasso_sweep_per_op"`
	// ScreenPerOp is allocations per covariance-screening pass into a
	// retained Partition (glasso.ScreenInto, scratch warm).
	ScreenPerOp float64 `json:"screen_per_op"`
	// ScatterPerOp is allocations per block scatter into a caller-owned
	// dense matrix (linalg.ScatterSym).
	ScatterPerOp float64 `json:"scatter_per_op"`
}

// runKernelBench measures the kernel layer, writes the JSON report to
// outPath, and — when basePath is non-empty — gates against the baseline
// report, returning non-zero on a regression.
func runKernelBench(outPath, basePath string, short, wide bool) int {
	// Load the baseline up front: outPath and basePath may be the same
	// file ("gate against the last committed run, then refresh it"), so
	// the baseline must be read before the report is written.
	var base *kernelsReport
	if basePath != "" {
		var err error
		base, err = loadKernelsReport(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench:", err)
			return 1
		}
	}
	rep := kernelsReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Simd:       linalg.SimdEnabled(),
		Short:      short,
	}

	matReps, glassoReps := 5, 3
	if short {
		matReps, glassoReps = 2, 2
	}
	for _, n := range []int{64, 128, 256} {
		rep.Matmul = append(rep.Matmul, benchMatmul(n, matReps))
	}
	ps := []int{16, 32, 64, 128}
	if short {
		ps = []int{16, 32, 64}
	}
	for _, p := range ps {
		rep.Glasso = append(rep.Glasso, benchGlasso(p, glassoReps))
	}
	if wide {
		wps := []int{256, 512, 1024}
		if short {
			wps = []int{256}
		}
		for _, p := range wps {
			rep.Wide = append(rep.Wide, benchWide(p, glassoReps))
		}
	}
	rep.Absorb = benchAbsorb(short)
	rep.Allocs = benchAllocs()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fdxbench:", err)
		return 1
	}
	fmt.Printf("kernel benchmark: %s\n%s", outPath, out)

	if base == nil {
		return 0
	}
	failures := compareKernels(&rep, base)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "fdxbench: REGRESSION:", f)
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Printf("compare vs %s: ok\n", basePath)
	return 0
}

// bestOf returns the fastest of reps timed runs of f — the standard defense
// against scheduler noise on shared runners.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

func benchMatmul(n, reps int) matmulBench {
	rng := rand.New(rand.NewSource(int64(n)))
	a := linalg.NewDense(n, n)
	b := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
			b.Set(i, j, rng.NormFloat64())
		}
	}
	c := linalg.NewDense(n, n)
	linalg.MulTo(c, a, b) // warm the packing pool

	blocked := bestOf(reps, func() { linalg.MulTo(c, a, b) })
	naive := bestOf(reps, func() { linalg.MulNaive(a, b) })
	flops := 2 * float64(n) * float64(n) * float64(n)
	return matmulBench{
		N:             n,
		BlockedMillis: float64(blocked.Microseconds()) / 1e3,
		NaiveMillis:   float64(naive.Microseconds()) / 1e3,
		BlockedGflops: flops / blocked.Seconds() / 1e9,
		NaiveGflops:   flops / naive.Seconds() / 1e9,
		Speedup:       naive.Seconds() / blocked.Seconds(),
	}
}

// benchCovariance builds a deterministic well-conditioned SPD matrix of
// order p: S = GᵀG/p + I/2 for a Gaussian factor G.
func benchCovariance(p int) *linalg.Dense {
	rng := rand.New(rand.NewSource(int64(p) * 7919))
	g := linalg.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	s := linalg.MulTo(linalg.NewDense(p, p), g.Transpose(), g)
	s.Scale(1 / float64(p))
	for i := 0; i < p; i++ {
		s.Add(i, i, 0.5)
	}
	s.Symmetrize()
	return s
}

func benchGlasso(p, reps int) glassoBench {
	s := benchCovariance(p)
	const lambda = 0.1
	opts := glasso.Options{Lambda: lambda}

	sweeps := 0
	solve := func(workers int) func() {
		return func() {
			o := opts
			o.Workers = workers
			res, err := glasso.Solve(s, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdxbench: glasso:", err)
				os.Exit(1)
			}
			sweeps = res.Iterations
		}
	}
	// The seed reference runs with the same hyper-parameters the live
	// solver defaults to (MaxIter 100, Tol 1e-5, inner 200/1e-6).
	seedSolve := func() {
		if _, _, err := seedGlassoSolve(s, lambda, 100, 1e-5, 200, 1e-6); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: seed glasso:", err)
			os.Exit(1)
		}
	}
	// Warm every variant before timing: the first call grows the heap (and,
	// for the optimized solver, primes the workspace pool), which would
	// otherwise be billed to whichever variant ran first.
	solve(1)()
	solve(8)()
	seedSolve()
	w1 := bestOf(reps, solve(1))
	w8 := bestOf(reps, solve(8))
	seed := bestOf(reps, seedSolve)
	return glassoBench{
		P:              p,
		Sweeps:         sweeps,
		SeedMillis:     float64(seed.Microseconds()) / 1e3,
		Workers1Millis: float64(w1.Microseconds()) / 1e3,
		Workers8Millis: float64(w8.Microseconds()) / 1e3,
		SpeedupVsSeed:  seed.Seconds() / w8.Seconds(),
		SpeedupWorkers: w1.Seconds() / w8.Seconds(),
	}
}

// plantedCovariance builds a deterministic covariance of order p with
// known block structure: SPD diagonal blocks of blockSize (Gaussian
// GᵀG/b plus a diagonal shift large enough to dominate the cross-block
// noise), and cross-block entries uniform in (−λ/2, λ/2) — real sub-
// threshold noise the screening pass must prove irrelevant, not exact
// zeros it could shortcut on.
func plantedCovariance(p, blockSize int, lambda float64) *linalg.Dense {
	rng := rand.New(rand.NewSource(int64(p)*104729 + 17))
	s := linalg.NewDense(p, p)
	for lo := 0; lo < p; lo += blockSize {
		hi := lo + blockSize
		if hi > p {
			hi = p
		}
		b := hi - lo
		g := linalg.NewDense(b, b)
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		blk := linalg.MulTo(linalg.NewDense(b, b), g.Transpose(), g)
		blk.Scale(1 / float64(b))
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				s.Set(lo+i, lo+j, blk.At(i, j))
			}
			// The shift keeps the full matrix SPD: the cross-block noise
			// has spectral norm ≈ 2·(λ/2/√3)·√p ≈ 3.7 at p=1024, λ=0.2.
			s.Add(lo+i, lo+i, 4.5)
		}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if i/blockSize != j/blockSize {
				v := (rng.Float64() - 0.5) * lambda
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
	}
	s.Symmetrize()
	return s
}

func benchWide(p, reps int) wideBench {
	const (
		lambda    = 0.2
		blockSize = 64
	)
	s := plantedCovariance(p, blockSize, lambda)
	// A pinned sweep budget with an unreachable tolerance makes every
	// variant run identical arithmetic (3 outer sweeps), so the ratios
	// measure per-sweep cost, not convergence luck. Converged=false is
	// expected and not an error.
	opts := glasso.Options{Lambda: lambda, MaxIter: 3, Tol: 1e-300}

	out := wideBench{P: p, Lambda: lambda}
	run := func(noScreen bool, workers int) func() {
		return func() {
			o := opts
			o.NoScreen = noScreen
			o.Workers = workers
			br, err := glasso.SolveBlocks(s, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdxbench: wide glasso:", err)
				os.Exit(1)
			}
			if !noScreen {
				out.Blocks = br.Part.NumBlocks()
				out.ScreenedRatio = br.Part.ScreenedRatio()
				out.Sweeps = br.Iterations()
			}
		}
	}
	// Warm every variant before timing (heap growth, workspace pools).
	run(true, 1)()
	run(false, 1)()
	run(false, 8)()
	dense := bestOf(reps, run(true, 1))
	screened := bestOf(reps, run(false, 1))
	par8 := bestOf(reps, run(false, 8))
	out.DenseMillis = float64(dense.Microseconds()) / 1e3
	out.ScreenedMillis = float64(screened.Microseconds()) / 1e3
	out.ParallelMillis = float64(par8.Microseconds()) / 1e3
	out.SpeedupVsDense = dense.Seconds() / screened.Seconds()
	out.SpeedupWorkers = screened.Seconds() / par8.Seconds()
	return out
}

func benchAbsorb(short bool) absorbBench {
	rows, batchRows := 100_000, 1024
	if short {
		rows = 10_000
	}
	inst := synth.Generate(synth.Config{
		Seed:              1,
		Tuples:            rows,
		Attributes:        12,
		DomainCardinality: 144,
		NoiseRate:         0.01,
	})
	rel := inst.Relation
	acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{Seed: 1, Workers: runtime.GOMAXPROCS(0)})
	total := rel.NumRows() / batchRows
	t0 := time.Now()
	for b := 0; b < total; b++ {
		if err := acc.Add(rel.Slice(b*batchRows, (b+1)*batchRows)); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: absorb:", err)
			os.Exit(1)
		}
	}
	sec := time.Since(t0).Seconds()
	return absorbBench{
		Rows:       total * batchRows,
		Attributes: rel.NumCols(),
		BatchRows:  batchRows,
		RowsPerSec: float64(total*batchRows) / sec,
	}
}

func benchAllocs() allocsBench {
	// MulTo into a caller-owned result, pools warm.
	n := 96
	a, b, c := linalg.NewDense(n, n), linalg.NewDense(n, n), linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b.Set(i, i, 2)
	}
	linalg.MulTo(c, a, b)
	mulAllocs := testing.AllocsPerRun(10, func() { linalg.MulTo(c, a, b) })

	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(1024 - i)
	}
	sink := 0.0
	vecAllocs := testing.AllocsPerRun(10, func() {
		linalg.Axpy(0.5, x, y)
		sink += linalg.Dot(x, y)
	})
	_ = sink

	// Marginal allocations per extra glasso sweep: force exact sweep
	// counts with a tolerance the delta can never reach (except by
	// becoming exactly zero, i.e. the fixed point, which allocates
	// nothing either), then difference a long solve against a short one.
	s := benchCovariance(32)
	solveSweeps := func(maxIter int) (*glasso.Result, error) {
		return glasso.Solve(s, glasso.Options{Lambda: 0.1, MaxIter: maxIter, Tol: 1e-300, Workers: 1})
	}
	resShort, err1 := solveSweeps(2)
	resLong, err2 := solveSweeps(12)
	if err1 != nil || err2 != nil {
		fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err1, err2)
		os.Exit(1)
	}
	extra := resLong.Iterations - resShort.Iterations
	if extra <= 0 {
		extra = 1
	}
	aShort := testing.AllocsPerRun(5, func() {
		if _, err := solveSweeps(2); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err)
			os.Exit(1)
		}
	})
	aLong := testing.AllocsPerRun(5, func() {
		if _, err := solveSweeps(12); err != nil {
			fmt.Fprintln(os.Stderr, "fdxbench: glasso allocs:", err)
			os.Exit(1)
		}
	})
	perSweep := (aLong - aShort) / float64(extra)
	if perSweep < 0 {
		perSweep = 0
	}

	// Screening pass into a retained Partition: after the first call
	// sizes the scratch, re-screening the same width allocates nothing.
	sw := plantedCovariance(256, 64, 0.2)
	part := glasso.Screen(sw, 0.2)
	screenAllocs := testing.AllocsPerRun(10, func() { glasso.ScreenInto(part, sw, 0.2) })

	// Block scatter into a caller-owned dense matrix.
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i * 4
	}
	sub := linalg.NewDense(64, 64)
	linalg.GatherSym(sub, sw, idx)
	dst := linalg.NewDense(256, 256)
	scatterAllocs := testing.AllocsPerRun(10, func() { linalg.ScatterSym(dst, sub, idx) })

	return allocsBench{
		MulToPerOp:       mulAllocs,
		AxpyDotPerOp:     vecAllocs,
		GlassoSweepPerOp: perSweep,
		ScreenPerOp:      screenAllocs,
		ScatterPerOp:     scatterAllocs,
	}
}

func loadKernelsReport(path string) (*kernelsReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep kernelsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareRatioSlack is how much a same-run speedup ratio may shrink versus
// the baseline before the gate fails: 10%.
const compareRatioSlack = 0.9

// compareMinMillis is the floor under the baseline's reference-kernel time
// for a size to participate in the gate: sub-millisecond measurements are
// dominated by timer and scheduler noise, and a ratio of two noisy numbers
// flaps regardless of slack.
const compareMinMillis = 1.0

// minParallelSpeedup is the absolute workers1-vs-workers8 floor a
// multi-core run must clear at its largest reliably-timed wide-glasso
// size — the screened block fan-out is the only remaining parallel path
// in the solver, so that is where serialization would show. Deliberately
// modest: the gate exists to catch the fan-out silently serializing, not
// to demand linear scaling. It applies whenever the CURRENT run is
// multi-core, regardless of what machine recorded the baseline, so a
// parallel regression cannot hide behind a single-core baseline.
const minParallelSpeedup = 1.05

// multiCore reports whether a run had real parallelism available.
func multiCore(r *kernelsReport) bool {
	return r.GoMaxProcs > 1 && (r.NumCPU > 1 || r.NumCPU == 0)
}

// compareKernels gates the fresh report against a baseline. Only
// machine-portable quantities are judged: speedup ratios (with 10% slack
// for noise) and steady-state allocation counts (exact — any increase is a
// regression). Sizes present in only one report — or too small to time
// reliably (see compareMinMillis) — are skipped, so a short CI run can
// gate against a full committed baseline.
func compareKernels(cur, base *kernelsReport) []string {
	var failures []string
	for _, bm := range base.Matmul {
		if bm.NaiveMillis < compareMinMillis {
			continue
		}
		for _, cm := range cur.Matmul {
			if cm.N != bm.N {
				continue
			}
			if cm.Speedup < bm.Speedup*compareRatioSlack {
				failures = append(failures, fmt.Sprintf(
					"matmul n=%d: blocked-vs-naive speedup %.2fx fell more than 10%% below baseline %.2fx",
					cm.N, cm.Speedup, bm.Speedup))
			}
		}
	}
	for _, bg := range base.Glasso {
		if bg.SeedMillis < compareMinMillis {
			continue
		}
		for _, cg := range cur.Glasso {
			if cg.P != bg.P {
				continue
			}
			if cg.SpeedupVsSeed < bg.SpeedupVsSeed*compareRatioSlack {
				failures = append(failures, fmt.Sprintf(
					"glasso p=%d: speedup vs seed %.2fx fell more than 10%% below baseline %.2fx",
					cg.P, cg.SpeedupVsSeed, bg.SpeedupVsSeed))
			}
		}
	}
	// Parallel speedup needs real cores behind it before its ratio means
	// anything: workers1-vs-workers8 is gated only when BOTH runs were
	// multi-core (keyed by gomaxprocs/num_cpu), so a single-CPU runner
	// neither flaps the gate nor launders a parallel regression into the
	// baseline. A multi-core current run additionally owes an absolute
	// speedup at the largest reliably-timed size — the glasso fan-out must
	// actually buy wall clock, not just avoid regressing.
	if multiCore(cur) && multiCore(base) {
		for _, bg := range base.Glasso {
			if bg.Workers1Millis < compareMinMillis {
				continue
			}
			for _, cg := range cur.Glasso {
				if cg.P != bg.P {
					continue
				}
				if cg.SpeedupWorkers < bg.SpeedupWorkers*compareRatioSlack {
					failures = append(failures, fmt.Sprintf(
						"glasso p=%d: parallel speedup %.2fx fell more than 10%% below baseline %.2fx",
						cg.P, cg.SpeedupWorkers, bg.SpeedupWorkers))
				}
			}
		}
	}
	// Wide section: the screening win (dense vs screened at Workers=1) is
	// a same-run ratio gated like every other speedup; the block fan-out
	// additionally owes an absolute speedup on any multi-core current run
	// — baseline or not — at the largest reliably-timed size. (The dense
	// glasso sizes above are single connected components after screening,
	// so their workers ratio legitimately sits at 1.0; the wide sizes are
	// where worker scaling is load-bearing.)
	for _, bw := range base.Wide {
		if bw.DenseMillis < compareMinMillis {
			continue
		}
		for _, cw := range cur.Wide {
			if cw.P != bw.P {
				continue
			}
			if cw.SpeedupVsDense < bw.SpeedupVsDense*compareRatioSlack {
				failures = append(failures, fmt.Sprintf(
					"wide p=%d: screened-vs-dense speedup %.2fx fell more than 10%% below baseline %.2fx",
					cw.P, cw.SpeedupVsDense, bw.SpeedupVsDense))
			}
		}
	}
	if multiCore(cur) && multiCore(base) {
		for _, bw := range base.Wide {
			if bw.ScreenedMillis < compareMinMillis {
				continue
			}
			for _, cw := range cur.Wide {
				if cw.P != bw.P {
					continue
				}
				if cw.SpeedupWorkers < bw.SpeedupWorkers*compareRatioSlack {
					failures = append(failures, fmt.Sprintf(
						"wide p=%d: parallel speedup %.2fx fell more than 10%% below baseline %.2fx",
						cw.P, cw.SpeedupWorkers, bw.SpeedupWorkers))
				}
			}
		}
	}
	if multiCore(cur) {
		var largest *wideBench
		for i := range cur.Wide {
			if cur.Wide[i].ScreenedMillis >= compareMinMillis {
				largest = &cur.Wide[i]
			}
		}
		if largest != nil && largest.SpeedupWorkers < minParallelSpeedup {
			failures = append(failures, fmt.Sprintf(
				"wide p=%d: parallel speedup %.2fx on a %d-core run, want >= %.2fx",
				largest.P, largest.SpeedupWorkers, cur.GoMaxProcs, minParallelSpeedup))
		}
	}
	type allocGate struct {
		name     string
		cur, old float64
	}
	for _, g := range []allocGate{
		{"mul_to_per_op", cur.Allocs.MulToPerOp, base.Allocs.MulToPerOp},
		{"axpy_dot_per_op", cur.Allocs.AxpyDotPerOp, base.Allocs.AxpyDotPerOp},
		{"glasso_sweep_per_op", cur.Allocs.GlassoSweepPerOp, base.Allocs.GlassoSweepPerOp},
		{"screen_per_op", cur.Allocs.ScreenPerOp, base.Allocs.ScreenPerOp},
		{"scatter_per_op", cur.Allocs.ScatterPerOp, base.Allocs.ScatterPerOp},
	} {
		if g.cur > g.old {
			failures = append(failures, fmt.Sprintf(
				"allocs %s: %.1f allocs/op, baseline %.1f (alloc counts are gated exactly)",
				g.name, g.cur, g.old))
		}
	}
	return failures
}
