package main

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"fdx"
	"fdx/internal/serve"
	"fdx/internal/serve/retry"
)

// shardSnap builds a shard accumulator holding the given global batches of
// the rowsFor grid (the same grid mustIngest feeds batch-per-seq) and
// returns its snapshot bytes.
func shardSnap(t *testing.T, batches ...int) []byte {
	t.Helper()
	acc := fdx.NewAccumulator(attrs, fdx.Options{})
	for _, g := range batches {
		rel := fdx.NewRelation("wire", attrs...)
		for _, row := range rowsFor(30, g*30) {
			if err := rel.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := acc.AddAt(rel, g); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := acc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerShardShipKillDashNineResume is the built-binary crash test for
// the shard-shipping endpoint: ship half the batches, kill -9 the server
// mid-sequence, restart it over the same directory, retry the first ship
// (idempotent against the checkpointed merge), ship the rest, and require
// the merged B matrix bit-identical to a sequentially-ingested session.
func TestServerShardShipKillDashNineResume(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, dir)

	// Reference: the same four batches ingested sequentially.
	mustCreate(t, s, "ref")
	for seq := 1; seq <= 4; seq++ {
		mustIngest(t, s, "ref", seq)
	}
	wantB := rawDiscoverB(t, s, "ref")

	mustCreate(t, s, "merged")
	ctx := context.Background()
	client := &serve.ShardClient{BaseURL: s.base, Tenant: "acme",
		RequestTimeout: 10 * time.Second,
		Retry:          retry.Policy{Base: 50 * time.Millisecond, MaxAttempts: 6}}
	firstHalf, secondHalf := shardSnap(t, 0, 1), shardSnap(t, 2, 3)
	if applied, err := client.ShipShard(ctx, "merged", 1, firstHalf); err != nil || !applied {
		t.Fatalf("first ship: applied=%v err=%v", applied, err)
	}

	// SIGKILL between ships: no drain handler runs. The acked merge was
	// checkpointed synchronously, so it must survive.
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	s.wait(t, 10*time.Second)

	s2 := startServer(t, dir)
	defer func() { s2.cmd.Process.Kill(); s2.wait(t, 10*time.Second) }()
	client.BaseURL = s2.base
	// A client that never saw the ack retries its ship. The restart wiped
	// the in-memory seq set, so dedup falls through to batch coverage:
	// acknowledged again, not double-counted.
	if applied, err := client.ShipShard(ctx, "merged", 1, firstHalf); err != nil || applied {
		t.Fatalf("re-ship after restart: applied=%v err=%v, want idempotent no-op ack", applied, err)
	}
	if applied, err := client.ShipShard(ctx, "merged", 2, secondHalf); err != nil || !applied {
		t.Fatalf("second ship: applied=%v err=%v", applied, err)
	}

	status, body, _ := call(t, "GET", s2.base+"/v1/sessions/merged", "acme", nil)
	if status != http.StatusOK || body["batches"] != float64(4) {
		t.Fatalf("merged session after crash: status %d body %v, want 4 batches", status, body)
	}
	if gotB := rawDiscoverB(t, s2, "merged"); gotB != wantB {
		t.Error("shard-merged B after kill -9 differs from sequential ingest")
	}
	res, err := client.Discover(ctx, "merged")
	if err != nil || len(res.FDs) == 0 {
		t.Errorf("typed Discover through client: fds=%d err=%v", len(res.FDs), err)
	}
}
