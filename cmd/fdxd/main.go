// Command fdxd serves incremental FD discovery over HTTP/JSON: named
// accumulator sessions with durable checkpoint+WAL state, batched
// idempotent ingest, queued discovery, per-tenant admission control, and
// graceful drain.
//
// Usage:
//
//	fdxd -data DIR [flags]
//
// Endpoints (see README "Serving" for bodies and error codes):
//
//	POST   /v1/sessions                  create (idempotent) a session
//	GET    /v1/sessions/{id}             session position
//	DELETE /v1/sessions/{id}             delete a session and its files
//	POST   /v1/sessions/{id}/rows        ingest one batch (seq-idempotent)
//	POST   /v1/sessions/{id}/discover    run discovery on a snapshot
//	GET    /metrics                      Prometheus text format
//	GET    /healthz                      ok / draining
//
// On SIGTERM the server stops admitting work (503 + Retry-After),
// finishes or abandons in-flight requests within -drain-timeout,
// checkpoints every session, and exits 0. Kill -9 instead loses at most
// the batch torn mid-append: every acknowledged batch is fsynced to the
// session's WAL, so a restart over the same -data directory resumes every
// stream bit-identically. SIGINT exits 130 without draining.
//
// Exit codes: 0 clean (drained) shutdown, 1 internal or drain-deadline
// error, 2 bad flags, 3 corrupt session state at startup, 130 interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	"fdx"
	"fdx/internal/obs/flight"
	"fdx/internal/serve"
	"fdx/internal/serve/limit"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("fdxd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	dataDir := fs.String("data", "", "session data directory (manifests, checkpoints, WALs); required")
	every := fs.Int("every", 16, "checkpoint a session every N absorbed batches")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline, propagated into discovery")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight work on SIGTERM before checkpointing anyway")
	workers := fs.Int("discover-workers", 2, "structure-learning worker-pool size")
	queueDepth := fs.Int("queue-depth", 16, "bounded discover backlog; a full queue sheds with 503")
	maxSessions := fs.Int("max-sessions", 0, "per-tenant concurrent-session cap (0 = unlimited)")
	rowsPerSec := fs.Float64("rows-per-sec", 0, "per-tenant sustained ingest rate in rows/s (0 = unlimited)")
	burst := fs.Float64("burst", 0, "ingest token-bucket capacity in rows (0 = one second of -rows-per-sec)")
	maxDiscover := fs.Int("max-discover", 0, "per-tenant in-flight discover cap (0 = unlimited)")
	slowReq := fs.Duration("slow-request", time.Second, "slow-request log threshold (logged at warn; <0 disables)")
	flightDir := fs.String("flight-dir", "", "flight-recorder capture directory (empty disables the black box)")
	flightEvery := fs.Duration("flight-every", flight.DefaultInterval, "flight-recorder sampling interval")
	verbose := fs.Bool("v", false, "log requests and lifecycle events to stderr (warnings always log)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "fdxd: -data is required")
		return 2
	}
	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fdxd:", err)
		return 2
	}
	// Structured request logging: warnings (slow_request, panics) always
	// reach stderr; -v turns on the per-request Info lines too.
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	sv, err := serve.New(serve.Config{
		DataDir: *dataDir,
		Quotas: limit.Quotas{
			MaxSessions:         *maxSessions,
			RowsPerSecond:       *rowsPerSec,
			Burst:               *burst,
			MaxInflightDiscover: *maxDiscover,
		},
		CheckpointEvery: *every,
		RequestTimeout:  *reqTimeout,
		DiscoverWorkers: *workers,
		QueueDepth:      *queueDepth,
		DrainTimeout:    *drainTimeout,
		Log:             logger,
		SlowRequest:     *slowReq,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxd:", err)
		return startupExitCode(err)
	}

	// The black box: always-on capture of the whole registry plus runtime
	// stats, surviving kill -9 for `fdx flight` postmortems.
	if *flightDir != "" {
		rec, err := flight.Start(flight.Options{
			Dir:      *flightDir,
			Interval: *flightEvery,
			Metrics:  sv.Metrics(),
			OnError:  func(err error) { logger.Warn("flight_recorder", "error", err.Error()) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdxd:", err)
			return 2
		}
		defer rec.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdxd:", err)
		return 2
	}
	// The tests (and operators' readiness probes) key on this line.
	fmt.Fprintf(os.Stderr, "fdxd: listening on http://%s\n", ln.Addr())

	hs := sv.HTTPServer(*addr)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigs := serve.NotifyDrain()
	defer sigs.Stop()
	select {
	case <-sigs.Drain():
		fmt.Fprintln(os.Stderr, "fdxd: SIGTERM received, draining")
		derr := sv.Drain()
		hs.Close()
		if derr != nil {
			fmt.Fprintln(os.Stderr, "fdxd:", derr)
			return 1
		}
		fmt.Fprintln(os.Stderr, "fdxd: drained cleanly, exiting")
		return 0
	case <-sigs.Interrupt():
		hs.Close()
		fmt.Fprintln(os.Stderr, "fdxd: interrupted")
		return 130
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fdxd:", err)
		return 1
	}
}

// startupExitCode maps a session-restore failure onto the documented exit
// codes (mirrors cmd/fdx).
func startupExitCode(err error) int {
	switch {
	case errors.Is(err, fdx.ErrCorruptCheckpoint), errors.Is(err, fdx.ErrCheckpointVersion):
		return 3
	case errors.Is(err, fdx.ErrBadInput):
		return 2
	default:
		return 1
	}
}
