package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fdx/internal/obs"
	"fdx/internal/obs/flight"
)

// preserveFlightCapture copies the capture directory's ring files into
// $FDX_FLIGHT_ARTIFACT_DIR/<test-name> when the test fails, so CI can
// upload the black box of a failed chaos run for postmortem with
// `fdx flight`.
func preserveFlightCapture(t *testing.T, dir string) {
	t.Cleanup(func() {
		dst := os.Getenv("FDX_FLIGHT_ARTIFACT_DIR")
		if dst == "" || !t.Failed() {
			return
		}
		out := filepath.Join(dst, strings.ReplaceAll(t.Name(), "/", "_"))
		files, err := flight.Files(dir)
		if err == nil {
			err = os.MkdirAll(out, 0o755)
		}
		if err != nil {
			t.Logf("preserving flight capture: %v", err)
			return
		}
		for _, f := range files {
			data, rerr := os.ReadFile(f)
			if rerr == nil {
				rerr = os.WriteFile(filepath.Join(out, filepath.Base(f)), data, 0o644)
			}
			if rerr != nil {
				t.Logf("preserving flight capture %s: %v", f, rerr)
			}
		}
		t.Logf("flight capture preserved in %s", out)
	})
}

// TestServerKillDashNineFlightPostmortem is the black-box contract: an
// fdxd killed with SIGKILL mid-ingest leaves a decodable flight capture
// whose final sample is no older than one sampling interval (plus
// scheduling slack) before the kill, and that sample holds the per-tenant
// ingest counters plus the synthesized runtime series — everything a
// postmortem needs with no cooperation from the dying process.
func TestServerKillDashNineFlightPostmortem(t *testing.T) {
	dir := t.TempDir()
	fdir := filepath.Join(dir, "flight")
	preserveFlightCapture(t, fdir)
	const interval = 25 * time.Millisecond
	s := startServer(t, dir, "-flight-dir", fdir, "-flight-every", interval.String())
	mustCreate(t, s, "bb")
	const batches = 5
	for seq := 1; seq <= batches; seq++ {
		mustIngest(t, s, "bb", seq)
	}
	// Let a few post-ingest samples land so the row counters are on disk.
	time.Sleep(6 * interval)

	killedAt := time.Now()
	if err := s.cmd.Process.Kill(); err != nil { // SIGKILL: no flush, no defer
		t.Fatal(err)
	}
	s.wait(t, 10*time.Second)

	samples, err := flight.DecodeDir(fdir)
	if err != nil {
		t.Fatalf("capture after kill -9 must decode cleanly, got: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("capture after kill -9 holds no samples")
	}
	last := samples[len(samples)-1]
	// Generous slack over one interval: the sampler may be descheduled, and
	// the kill itself races the tick.
	if age := killedAt.Sub(last.Time); age > interval+500*time.Millisecond {
		t.Errorf("last sample is %v older than the kill, want ≤ %v", age, interval)
	}
	rowsSeries := obs.Labeled(obs.MServeRows, "tenant", "acme")
	if rows, ok := last.Number(rowsSeries); !ok || rows < float64(batches*30) {
		t.Errorf("final sample %s = %v (ok=%v), want ≥ %d", rowsSeries, rows, ok, batches*30)
	}
	if g, ok := last.Number("go_goroutines"); !ok || g <= 0 {
		t.Errorf("final sample go_goroutines = %v (ok=%v), want > 0", g, ok)
	}
}
