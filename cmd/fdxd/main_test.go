package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var binPath string

// TestMain builds the fdxd binary once so the tests observe real signal
// handling and exit codes.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fdxdcmd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "fdxd")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fdxd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// server is one running fdxd process.
type server struct {
	cmd    *exec.Cmd
	base   string // http://127.0.0.1:PORT
	stderr *bytes.Buffer
	mu     *sync.Mutex
}

// startServer launches fdxd on a free port over dir and waits for its
// listening line.
func startServer(t *testing.T, dir string, extra ...string) *server {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dir}, extra...)
	cmd := exec.Command(binPath, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting fdxd: %v", err)
	}
	s := &server{cmd: cmd, stderr: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			s.mu.Lock()
			s.stderr.WriteString(line + "\n")
			s.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "fdxd: listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case base := <-addrc:
		s.base = base
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("fdxd never printed its listening line; stderr:\n%s", s.stderrText())
	}
	return s
}

func (s *server) stderrText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stderr.String()
}

// wait blocks for process exit and returns the exit code.
func (s *server) wait(t *testing.T, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("waiting for fdxd: %v", err)
	case <-time.After(timeout):
		s.cmd.Process.Kill()
		t.Fatalf("fdxd did not exit within %s; stderr:\n%s", timeout, s.stderrText())
	}
	return -1
}

// call makes one JSON request and returns status, parsed body, and the
// Retry-After header.
func call(t *testing.T, method, url, tenant string, body any) (int, map[string]any, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Fdx-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(raw) > 0 && strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, decoded, resp.Header.Get("Retry-After")
}

var attrs = []string{"a", "b", "c"}

func rowsFor(n, offset int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		v := offset + i
		rows[i] = []string{
			fmt.Sprintf("a%d", v%5),
			fmt.Sprintf("b%d", (v%5)*2),
			fmt.Sprintf("c%d", v%3),
		}
	}
	return rows
}

func mustCreate(t *testing.T, s *server, id string) {
	t.Helper()
	status, body, _ := call(t, "POST", s.base+"/v1/sessions", "acme",
		map[string]any{"id": id, "attributes": attrs})
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("create %s: status %d body %v", id, status, body)
	}
}

func mustIngest(t *testing.T, s *server, id string, seq int) {
	t.Helper()
	status, body, _ := call(t, "POST", s.base+"/v1/sessions/"+id+"/rows", "acme",
		map[string]any{"seq": seq, "rows": rowsFor(30, (seq-1)*30)})
	if status != http.StatusOK {
		t.Fatalf("ingest seq %d: status %d body %v", seq, status, body)
	}
}

// rawDiscoverB returns the "b" field of a discover reply as raw JSON text:
// byte equality of this string is bit-identity of the float64 matrix.
func rawDiscoverB(t *testing.T, s *server, id string) string {
	t.Helper()
	status, body, _ := call(t, "POST", s.base+"/v1/sessions/"+id+"/discover", "acme", nil)
	if status != http.StatusOK {
		t.Fatalf("discover: status %d body %v", status, body)
	}
	raw, err := json.Marshal(body["b"])
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestServerDrainOnSIGTERM: under active ingest, SIGTERM makes the server
// shed new requests with 503 + Retry-After, checkpoint every live
// session, and exit 0 within the drain deadline; a restart over the same
// directory resumes at exactly the acknowledged position.
func TestServerDrainOnSIGTERM(t *testing.T) {
	dir := t.TempDir()
	// -every 1000 ensures nothing checkpoints during ingest: the drain
	// itself must make the state durable.
	s := startServer(t, dir, "-drain-timeout", "5s", "-every", "1000", "-v")
	mustCreate(t, s, "live")

	// Active ingest: a background client streams batches until it is
	// shed; acked counts the 200-applied responses.
	acked := 0
	stop := make(chan struct{})
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		seq := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			status, _, _ := call2(s.base+"/v1/sessions/live/rows", "acme",
				map[string]any{"seq": seq, "rows": rowsFor(30, (seq-1)*30)})
			if status != http.StatusOK {
				return // shed by the drain (or the server is gone)
			}
			acked = seq
			seq++
		}
	}()
	// Let some batches through, then drain mid-stream.
	time.Sleep(300 * time.Millisecond)
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-clientDone
	close(stop)
	if acked == 0 {
		t.Fatal("client never got a batch in before the drain")
	}

	// While the process is still up (drain window), new work is shed with
	// the typed 503. The window is short; tolerate the server having
	// already exited.
	status, body, retryAfter := call2(s.base+"/v1/sessions/live/rows", "acme",
		map[string]any{"seq": acked + 1, "rows": rowsFor(4, 0)})
	if status == http.StatusServiceUnavailable {
		e, _ := body["error"].(map[string]any)
		if e["code"] != "draining" {
			t.Errorf("drain shed code = %v, want draining", e["code"])
		}
		if retryAfter == "" {
			t.Error("drain 503 without Retry-After header")
		}
	}

	if code := s.wait(t, 15*time.Second); code != 0 {
		t.Fatalf("drained fdxd exited %d, want 0; stderr:\n%s", code, s.stderrText())
	}
	// The drain checkpointed: the WAL was reset after the snapshot.
	if fi, err := os.Stat(filepath.Join(dir, "live.fdx.wal")); err != nil {
		t.Fatalf("post-drain WAL: %v", err)
	} else if fi.Size() != 0 {
		t.Errorf("post-drain WAL holds %d bytes, want 0 (checkpoint should cover it)", fi.Size())
	}

	// Restart: every acknowledged batch is there.
	s2 := startServer(t, dir)
	defer func() { s2.cmd.Process.Kill(); s2.wait(t, 10*time.Second) }()
	status, body, _ = call(t, "GET", s2.base+"/v1/sessions/live", "acme", nil)
	if status != http.StatusOK || body["batches"] != float64(acked) {
		t.Fatalf("restored session: status %d body %v, want %d batches", status, body, acked)
	}
}

// call2 is call without the test handle, for probes that may race the
// server's exit (a connection error is acceptable there).
func call2(url, tenant string, body any) (int, map[string]any, string) {
	raw, _ := json.Marshal(body)
	req, _ := http.NewRequest("POST", url, bytes.NewReader(raw))
	req.Header.Set("X-Fdx-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, ""
	}
	defer resp.Body.Close()
	var decoded map[string]any
	json.NewDecoder(resp.Body).Decode(&decoded)
	return resp.StatusCode, decoded, resp.Header.Get("Retry-After")
}

// TestServerKillDashNineRestartBitIdentical: kill -9 (no drain, no
// checkpoint flush) then restart must resume the stream bit-identically —
// the WAL fsynced every acknowledged batch, and the restored accumulator's
// B matrix equals the pre-kill one byte-for-byte on the wire.
func TestServerKillDashNineRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	// -every 2 with 5 batches leaves a WAL tail: the restart replays it.
	s := startServer(t, dir, "-every", "2")
	mustCreate(t, s, "s1")
	const batches = 5
	for seq := 1; seq <= batches; seq++ {
		mustIngest(t, s, "s1", seq)
	}
	wantB := rawDiscoverB(t, s, "s1")

	if err := s.cmd.Process.Kill(); err != nil { // SIGKILL: no handler runs
		t.Fatal(err)
	}
	s.wait(t, 10*time.Second)

	s2 := startServer(t, dir, "-every", "2")
	defer func() { s2.cmd.Process.Kill(); s2.wait(t, 10*time.Second) }()
	status, body, _ := call(t, "GET", s2.base+"/v1/sessions/s1", "acme", nil)
	if status != http.StatusOK || body["batches"] != float64(batches) {
		t.Fatalf("restored session: status %d body %v, want %d batches", status, body, batches)
	}
	if gotB := rawDiscoverB(t, s2, "s1"); gotB != wantB {
		t.Errorf("B after kill -9 + restart differs from pre-kill B")
	}
	// The stream continues exactly where it left off.
	mustIngest(t, s2, "s1", batches+1)
}

// TestServerQuotaOnTheWire: the 429 taxonomy survives real HTTP.
func TestServerQuotaOnTheWire(t *testing.T) {
	s := startServer(t, t.TempDir(), "-max-sessions", "1")
	defer func() { s.cmd.Process.Kill(); s.wait(t, 10*time.Second) }()
	mustCreate(t, s, "only")
	status, body, retryAfter := call(t, "POST", s.base+"/v1/sessions", "acme",
		map[string]any{"id": "second", "attributes": attrs})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: status %d body %v", status, body)
	}
	e, _ := body["error"].(map[string]any)
	if e["code"] != "quota_exceeded" || retryAfter == "" {
		t.Errorf("over-quota create: code %v retry-after %q", e["code"], retryAfter)
	}
}

// TestServerMetricsOnTheWire: /metrics serves Prometheus text with the
// per-tenant serve families.
func TestServerMetricsOnTheWire(t *testing.T) {
	s := startServer(t, t.TempDir())
	defer func() { s.cmd.Process.Kill(); s.wait(t, 10*time.Second) }()
	mustCreate(t, s, "m1")
	mustIngest(t, s, "m1", 1)
	resp, err := http.Get(s.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	for _, want := range []string{
		"# TYPE fdx_serve_rows_total counter",
		`fdx_serve_rows_total{tenant="acme"} 30`,
		`fdx_serve_sessions{tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
