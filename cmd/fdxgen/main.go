// Command fdxgen generates the benchmark data sets used by the experiment
// harness and writes them as CSV, so the fdx CLI (or any other tool) can be
// run against them directly.
//
// Usage:
//
//	fdxgen -kind bayesnet -name asia -rows 2000 -out asia.csv
//	fdxgen -kind real -name hospital -out hospital.csv
//	fdxgen -kind synth -rows 1000 -cols 12 -domain 144 -noise 0.01 -out synth.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"fdx/internal/bayesnet"
	"fdx/internal/dataset"
	"fdx/internal/realdata"
	"fdx/internal/synth"
)

func main() {
	var (
		kind   = flag.String("kind", "synth", "data set family: synth | bayesnet | real")
		name   = flag.String("name", "", "data set name (bayesnet: alarm|asia|cancer|child|earthquake; real: australian|hospital|mammographic|nypd|thoracic|tictactoe)")
		rows   = flag.Int("rows", 1000, "rows to generate (synth, bayesnet)")
		cols   = flag.Int("cols", 12, "attributes (synth)")
		domain = flag.Int("domain", 144, "LHS domain cardinality (synth)")
		noise  = flag.Float64("noise", 0.01, "noise rate (synth) / CPT deviation (bayesnet)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output CSV path (default stdout)")
		truth  = flag.Bool("truth", false, "print planted FDs to stderr (synth, bayesnet)")
	)
	flag.Parse()

	var rel *dataset.Relation
	switch *kind {
	case "synth":
		inst := synth.Generate(synth.Config{
			Tuples: *rows, Attributes: *cols, DomainCardinality: *domain,
			NoiseRate: *noise, Seed: *seed,
		})
		rel = inst.Relation
		if *truth {
			for _, fd := range inst.TrueFDs {
				fmt.Fprintln(os.Stderr, fd.Format(rel.AttrNames()))
			}
		}
	case "bayesnet":
		net, err := bayesnet.ByName(*name)
		if err != nil {
			fatal(err)
		}
		rel = net.Sample(*rows, *noise, *seed)
		if *truth {
			for _, fd := range net.TrueFDs() {
				fmt.Fprintln(os.Stderr, fd.Format(rel.AttrNames()))
			}
		}
	case "real":
		var err error
		rel, err = realdata.ByName(*name, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if *out == "" {
		if err := dataset.WriteCSV(rel, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.SaveCSV(rel, *out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fdxgen: wrote %d rows x %d cols to %s\n", rel.NumRows(), rel.NumCols(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdxgen:", err)
	os.Exit(1)
}
