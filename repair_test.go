package fdx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fdx"
)

func TestDiscoverThenRepairRoundTrip(t *testing.T) {
	// Build clean data with zip -> city, corrupt it, rediscover + repair.
	rng := rand.New(rand.NewSource(4))
	rel := fdx.NewRelation("t", "zip", "city")
	cities := []string{"chicago", "madison", "milwaukee", "rockford"}
	for i := 0; i < 800; i++ {
		c := rng.Intn(len(cities))
		rel.AppendRow([]string{fmt.Sprintf("%d", 60000+c), cities[c]})
	}
	noisy := rel.Clone()
	corrupted := 0
	for i := 0; i < noisy.NumRows(); i++ {
		if rng.Float64() < 0.03 {
			noisy.Columns[1].SetCode(i, noisy.Columns[1].CodeOf("xxtypo"))
			corrupted++
		}
	}

	res, err := fdx.Discover(noisy, fdx.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var zipCity *fdx.FD
	for i := range res.FDs {
		if res.FDs[i].RHS == "city" {
			zipCity = &res.FDs[i]
		}
	}
	if zipCity == nil {
		t.Fatalf("zip -> city not rediscovered on noisy data: %v", res.FDs)
	}

	vs, err := fdx.FindViolations(noisy, []fdx.FD{*zipCity})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < corrupted {
		t.Errorf("found %d violations, corrupted %d cells", len(vs), corrupted)
	}
	fixed, n, err := fdx.Repair(noisy, []fdx.FD{*zipCity}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if n < corrupted {
		t.Errorf("repaired %d < %d", n, corrupted)
	}
	rate, err := fdx.ErrorRate(fixed, []fdx.FD{*zipCity})
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("error rate after repair = %v", rate)
	}
}

func TestFindViolationsUnknownAttribute(t *testing.T) {
	rel := fdx.NewRelation("t", "a")
	rel.AppendRow([]string{"x"})
	if _, err := fdx.FindViolations(rel, []fdx.FD{{LHS: []string{"zz"}, RHS: "a"}}); err == nil {
		t.Error("unknown LHS attribute accepted")
	}
	if _, _, err := fdx.Repair(rel, []fdx.FD{{LHS: []string{"a"}, RHS: "zz"}}, 0.5); err == nil {
		t.Error("unknown RHS attribute accepted")
	}
	if _, err := fdx.ErrorRate(rel, []fdx.FD{{LHS: []string{"q"}, RHS: "a"}}); err == nil {
		t.Error("unknown attribute accepted in ErrorRate")
	}
}
