GO ?= go

.PHONY: all build test vet bench experiments fast-experiments fmt loc

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure (reduced scale).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate every paper table/figure at report scale (slow).
experiments:
	$(GO) run ./cmd/fdxbench -exp all

# Quick pass over every experiment.
fast-experiments:
	$(GO) run ./cmd/fdxbench -exp all -fast

fmt:
	gofmt -w .

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
