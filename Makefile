GO ?= go

.PHONY: all build test vet lint lint-tests lint-baseline lint-report test-race test-faults test-crash test-serve test-shard fuzz bench bench-obs bench-flight bench-kernels bench-kernels-short bench-kernels-wide experiments fast-experiments bench-serve bench-serve-short bench-shard-short fmt loc

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Project analyzers (internal/analysis): the intraprocedural determinism and
# numeric-safety lints plus the interprocedural call-graph suite (errwrap,
# ctxflow, detsource, hotalloc). Findings grandfathered in lint-baseline.json
# do not fail the run; new findings do, and -ratchet fails when baseline
# entries go stale (debt was paid down) until `make lint-baseline` re-commits
# the smaller file — the baseline only ever shrinks.
lint:
	$(GO) run ./cmd/fdxlint -baseline lint-baseline.json -ratchet ./...

# Lint _test.go files too. Checks whose flagged constructs are idiomatic in
# tests (floatcmp, nakedpanic, dimcheck) skip test files; maporder,
# goroutinecapture, and spanleak stay active there.
lint-tests:
	$(GO) run ./cmd/fdxlint -tests ./...

# Regenerate lint-baseline.json from the current findings.
lint-baseline:
	$(GO) run ./cmd/fdxlint -baseline lint-baseline.json -write-baseline ./...

# Machine-readable report (findings, baseline accounting, stale entries).
lint-report:
	$(GO) run ./cmd/fdxlint -json -baseline lint-baseline.json ./... > lint-report.json

# Race-detect the concurrent packages: the parallel transform and stratified
# covariance (internal/core, internal/stats), the worker pool and parallel
# kernels (internal/par, internal/linalg, internal/glasso), the experiment
# harness's timed goroutines, and the root streaming API.
test-race:
	$(GO) test -race ./internal/core ./internal/stats ./internal/par ./internal/linalg ./internal/glasso ./internal/experiments ./internal/obs ./internal/serve/... .

# Fault-injection suite: every TestFault* test arms internal/faults points
# (poisoned covariance, forced non-convergence, bad pivots, slow stages,
# injected panics, torn checkpoint I/O) and asserts typed errors or
# degraded-but-valid results. Run under the race detector since injections
# exercise cancellation paths.
test-faults:
	$(GO) test -race -run 'Fault' ./internal/faults ./internal/core ./internal/glasso ./internal/checkpoint ./internal/serve .

# Crash-equivalence suite: kill the durable stream at every byte of its
# snapshot and WAL, restore, and require results identical to an
# uninterrupted run (or a typed corruption error) — never a panic.
test-crash:
	$(GO) test -race -run 'Crash' ./internal/checkpoint ./internal/serve .

# Service robustness suite: the race-enabled internal/serve tests (armed
# IngestStall/QueueFull/DrainTimeout faults under concurrent tenants,
# kill-and-resume bit-identity) plus the built-binary fdxd tests (SIGTERM
# drain under active ingest, kill -9 restart) and the stream drain tests.
test-serve:
	$(GO) test -race ./internal/serve/... ./cmd/fdxd
	$(GO) test -run 'TestStream' ./cmd/fdx

# Sharded-discovery chaos suite under the race detector: the supervised
# `fdx stream -shards` workers with ShardCrash/ShardStall/MergeCorrupt
# armed (crash at every checkpoint boundary → bit-identical to the 1-shard
# run), the shard-shipping service API (idempotent seq handling, corrupt
# and mismatched snapshots rejected typed), the built-binary fdxd
# kill-and-resume ship test, and the library-level determinism sweep.
test-shard:
	$(GO) test -race -run 'Shard' ./cmd/fdx ./internal/serve/... ./cmd/fdxd .

# Short local fuzz campaigns over the public entry points.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDiscover -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzMergeSnapshot -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzFlightDecode -fuzztime 30s ./internal/obs/flight

# Telemetry micro-benchmarks plus the end-to-end overhead gate: a Discover
# with live tracer+metrics must stay within 2% of a nil-sink run.
bench-obs:
	$(GO) test -run '^$$' -bench Obs -benchmem ./internal/obs
	FDX_OBS_OVERHEAD=1 $(GO) test -run TestObsOverhead -v .

# Flight-recorder micro-benchmarks (per-sample encode cost, decode
# throughput) plus the always-on gate: a metric-hammering workload with a
# live 1 Hz recorder must stay within 2% of the same workload without one.
bench-flight:
	$(GO) test -run '^$$' -bench Flight -benchmem ./internal/obs/flight
	FDX_FLIGHT_OVERHEAD=1 $(GO) test -run TestFlightOverhead -v ./internal/obs/flight

# One testing.B benchmark per paper table/figure (reduced scale), plus the
# checkpoint streaming benchmark (BENCH_stream.json).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
	$(GO) run ./cmd/fdxbench -stream BENCH_stream.json

# Numeric-kernel benchmark: blocked matmul vs the frozen naive kernel, the
# parallel Graphical Lasso vs the frozen seed solver, absorb throughput,
# and steady-state allocation counts. Gates the fresh run against the
# committed baseline (speedup ratios with 10% slack; allocs exactly), then
# refreshes BENCH_kernels.json.
bench-kernels:
	$(GO) run ./cmd/fdxbench -kernels BENCH_kernels.json -wide -compare BENCH_kernels.json

# CI smoke variant: reduced sizes and repetitions, gated against the
# committed baseline without touching it.
bench-kernels-short:
	$(GO) run ./cmd/fdxbench -kernels /tmp/BENCH_kernels_ci.json -short -compare BENCH_kernels.json

# Wide-schema smoke: the screened block solver at p=256 (short mode keeps
# the dense reference solve affordable), gated against the committed
# baseline without touching it. The full wide sweep (p up to 1024) runs
# via `make bench-kernels`.
bench-kernels-wide:
	$(GO) run ./cmd/fdxbench -kernels /tmp/BENCH_kernels_wide_ci.json -short -wide -compare BENCH_kernels.json

# Service benchmark: multi-tenant ingest throughput over HTTP, discover
# latency quantiles, and the shed rate under deliberate overload
# (BENCH_serve.json).
bench-serve:
	$(GO) run ./cmd/fdxbench -serve BENCH_serve.json

# CI smoke variant: reduced workload, report left in /tmp.
bench-serve-short:
	$(GO) run ./cmd/fdxbench -serve /tmp/BENCH_serve_ci.json -short

# CI smoke variant of the shard-merge scaling section: reduced rows,
# report left in /tmp (the committed BENCH_stream.json carries the full
# run via `fdxbench -stream BENCH_stream.json -shards`).
bench-shard-short:
	$(GO) run ./cmd/fdxbench -stream /tmp/BENCH_stream_ci.json -fast -shards

# Regenerate every paper table/figure at report scale (slow).
experiments:
	$(GO) run ./cmd/fdxbench -exp all

# Quick pass over every experiment.
fast-experiments:
	$(GO) run ./cmd/fdxbench -exp all -fast

fmt:
	gofmt -w .

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
