package fdx

import (
	"fmt"

	"fdx/internal/core"
	"fdx/internal/normalize"
)

// Table is one relation of a synthesized schema decomposition.
type Table struct {
	// Name is a generated label, e.g. "t1".
	Name string
	// Attributes lists the table's attribute names.
	Attributes []string
	// Key is a key of the table.
	Key []string
	// FDs are the dependencies local to the table.
	FDs []FD
}

func fdsToCore(fds []FD, rel *Relation) ([]core.FD, error) {
	var out []core.FD
	for _, fd := range fds {
		cf, err := fdToCore(fd, rel)
		if err != nil {
			return nil, err
		}
		out = append(out, cf)
	}
	return out, nil
}

// CandidateKeys enumerates the minimal candidate keys of the relation's
// schema under the given FDs (at most 32), as attribute-name sets.
func CandidateKeys(rel *Relation, fds []FD) ([][]string, error) {
	cfds, err := fdsToCore(fds, rel)
	if err != nil {
		return nil, err
	}
	names := rel.AttrNames()
	var out [][]string
	for _, key := range normalize.CandidateKeys(rel.NumCols(), cfds, 0) {
		var k []string
		for _, a := range key.Members() {
			k = append(k, names[a])
		}
		out = append(out, k)
	}
	return out, nil
}

// IsBCNF reports whether the schema is in Boyce-Codd normal form under the
// FDs, returning the first violating FD otherwise.
func IsBCNF(rel *Relation, fds []FD) (bool, *FD, error) {
	cfds, err := fdsToCore(fds, rel)
	if err != nil {
		return false, nil, err
	}
	ok, viol := normalize.IsBCNF(rel.NumCols(), cfds)
	if ok || viol == nil {
		return ok, nil, nil
	}
	named := fdFromCore(*viol, rel.AttrNames())
	return false, &named, nil
}

// Synthesize3NF decomposes the relation's schema into third normal form
// using the classical synthesis algorithm over a minimal cover of the FDs.
// The decomposition is lossless and dependency-preserving.
func Synthesize3NF(rel *Relation, fds []FD) ([]Table, error) {
	cfds, err := fdsToCore(fds, rel)
	if err != nil {
		return nil, err
	}
	names := rel.AttrNames()
	var out []Table
	for i, d := range normalize.Synthesize3NF(rel.NumCols(), cfds) {
		t := Table{Name: fmt.Sprintf("t%d", i+1)}
		for _, a := range d.Attrs {
			t.Attributes = append(t.Attributes, names[a])
		}
		for _, a := range d.Key {
			t.Key = append(t.Key, names[a])
		}
		for _, fd := range d.FDs {
			t.FDs = append(t.FDs, fdFromCore(fd, names))
		}
		out = append(out, t)
	}
	return out, nil
}
