package fdx_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fdx"
)

// noisyAddressRelation builds a relation with zip→city and city→state
// dependencies, a key column, and injected typos.
func noisyAddressRelation(rng *rand.Rand, n int, noise float64) *fdx.Relation {
	rel := fdx.NewRelation("addresses", "id", "zip", "city", "state")
	cities := []string{"chicago", "madison", "milwaukee", "rockford", "minneapolis", "duluth"}
	states := []string{"il", "wi", "wi", "il", "mn", "mn"}
	for i := 0; i < n; i++ {
		c := rng.Intn(len(cities))
		zip := fmt.Sprintf("%d", 60000+c*37+rng.Intn(4)) // few zips per city
		city, state := cities[c], states[c]
		if rng.Float64() < noise {
			city = cities[rng.Intn(len(cities))]
		}
		rel.AppendRow([]string{fmt.Sprintf("r%d", i), zip, city, state})
	}
	return rel
}

func TestDiscoverEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := noisyAddressRelation(rng, 1200, 0.02)
	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var hasZipCity, hasCityState bool
	for _, fd := range res.FDs {
		s := fd.String()
		if strings.Contains(s, "zip") && fd.RHS == "city" {
			hasZipCity = true
		}
		if fd.RHS == "state" || (fd.RHS == "city" && strings.Contains(s, "state")) {
			hasCityState = true
		}
	}
	if !hasZipCity {
		t.Errorf("zip -> city not discovered: %v", res.FDs)
	}
	if !hasCityState {
		t.Errorf("city/state dependency not discovered: %v", res.FDs)
	}
	// The key column must not be determined by anything.
	for _, fd := range res.FDs {
		if fd.RHS == "id" {
			t.Errorf("key column reported as determined: %v", fd)
		}
	}
	if res.TransformDuration <= 0 || res.ModelDuration <= 0 {
		t.Error("durations not recorded")
	}
	if len(res.B) != 4 || len(res.B[0]) != 4 {
		t.Error("B matrix has wrong shape")
	}
	if res.Heatmap() == "" {
		t.Error("heatmap empty")
	}
}

func TestOptionsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := noisyAddressRelation(rng, 400, 0)
	if _, err := fdx.Discover(rel, fdx.Options{Ordering: "bogus"}); err == nil {
		t.Error("invalid ordering accepted")
	}
	res, err := fdx.Discover(rel, fdx.Options{MaxRows: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestHasFDWith(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := noisyAddressRelation(rng, 800, 0)
	res, err := fdx.Discover(rel, fdx.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasFDWith("city") {
		t.Error("city should participate in a dependency")
	}
	if res.HasFDWith("id") {
		t.Error("key column should be independent")
	}
}

func TestFDStringFormat(t *testing.T) {
	fd := fdx.FD{LHS: []string{"a", "b"}, RHS: "c"}
	if fd.String() != "a,b -> c" {
		t.Errorf("String = %q", fd.String())
	}
}

func TestReadCSVIntegration(t *testing.T) {
	csv := "a,b\n1,x\n2,y\n1,x\n2,y\n1,x\n2,y\n"
	rel, err := fdx.ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fdx.Discover(rel, fdx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 {
		t.Error("duplicate-pattern CSV should yield an FD")
	}
}
