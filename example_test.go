package fdx_test

import (
	"fmt"
	"strings"

	"fdx"
)

// repeatedRows builds a deterministic relation where zip determines city.
func exampleRelation() *fdx.Relation {
	rel := fdx.NewRelation("addresses", "zip", "city")
	pattern := [][2]string{
		{"60611", "chicago"}, {"60612", "chicago"}, {"53703", "madison"},
		{"53711", "madison"}, {"53188", "waukesha"},
	}
	for i := 0; i < 60; i++ {
		p := pattern[i%len(pattern)]
		rel.AppendRow([]string{p[0], p[1]})
	}
	return rel
}

func ExampleDiscover() {
	rel := exampleRelation()
	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, fd := range res.FDs {
		fmt.Println(fd)
	}
	// Output:
	// zip -> city
}

func ExampleFindViolations() {
	rel := exampleRelation()
	// Introduce a typo: one Chicago zip labelled "chicgo".
	rel.AppendRow([]string{"60611", "chicgo"})
	vs, err := fdx.FindViolations(rel, []fdx.FD{{LHS: []string{"zip"}, RHS: "city"}})
	if err != nil {
		panic(err)
	}
	for _, v := range vs {
		fmt.Printf("row %d: %s should be %s\n", v.Row, v.Observed, v.Suggested)
	}
	// Output:
	// row 60: chicgo should be chicago
}

func ExampleRepair() {
	rel := exampleRelation()
	rel.AppendRow([]string{"60611", "chicgo"})
	fixed, n, err := fdx.Repair(rel, []fdx.FD{{LHS: []string{"zip"}, RHS: "city"}}, 0.8)
	if err != nil {
		panic(err)
	}
	city, _ := fixed.Columns[1].Value(60)
	fmt.Println(n, city)
	// Output:
	// 1 chicago
}

func ExampleReadCSV() {
	csv := "sku,category\n" + strings.Repeat("s1,toys\ns2,grocery\ns3,toys\n", 20)
	rel, err := fdx.ReadCSV("orders", strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, fd := range res.FDs {
		fmt.Println(fd)
	}
	// Output:
	// sku -> category
}
