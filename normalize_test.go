package fdx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fdx"
)

func TestDiscoverThenNormalize(t *testing.T) {
	// Denormalized order table: zip determines city which determines
	// state; order id is the key.
	rng := rand.New(rand.NewSource(15))
	rel := fdx.NewRelation("orders", "order", "zip", "city", "state")
	cities := []string{"chicago", "madison", "milwaukee", "duluth", "rockford", "peoria"}
	states := []string{"il", "wi", "wi", "mn", "il", "il"}
	for i := 0; i < 1000; i++ {
		c := rng.Intn(len(cities))
		rel.AppendRow([]string{
			fmt.Sprintf("o%d", i),
			fmt.Sprintf("%d", 60000+c*11+rng.Intn(2)),
			cities[c], states[c],
		})
	}
	res, err := fdx.Discover(rel, fdx.Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 {
		t.Fatal("nothing discovered")
	}

	keys, err := fdx.CandidateKeys(rel, res.FDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no candidate keys")
	}
	// Every candidate key must include the order id (nothing determines it).
	for _, k := range keys {
		hasOrder := false
		for _, a := range k {
			if a == "order" {
				hasOrder = true
			}
		}
		if !hasOrder {
			t.Errorf("candidate key %v misses the order id", k)
		}
	}

	ok, viol, err := fdx.IsBCNF(rel, res.FDs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("denormalized schema should violate BCNF")
	}
	if viol == nil {
		t.Error("violating FD not reported")
	}

	tables, err := fdx.Synthesize3NF(rel, res.FDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 2 {
		t.Errorf("3NF synthesis produced %d tables; want a real decomposition", len(tables))
	}
	covered := map[string]bool{}
	for _, tb := range tables {
		if len(tb.Key) == 0 || len(tb.Attributes) == 0 || tb.Name == "" {
			t.Errorf("malformed table %+v", tb)
		}
		for _, a := range tb.Attributes {
			covered[a] = true
		}
	}
	for _, a := range rel.AttrNames() {
		if !covered[a] {
			t.Errorf("attribute %s lost in decomposition", a)
		}
	}
}

func TestNormalizeUnknownAttr(t *testing.T) {
	rel := fdx.NewRelation("t", "a")
	bad := []fdx.FD{{LHS: []string{"zz"}, RHS: "a"}}
	if _, err := fdx.CandidateKeys(rel, bad); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, _, err := fdx.IsBCNF(rel, bad); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := fdx.Synthesize3NF(rel, bad); err == nil {
		t.Error("unknown attribute accepted")
	}
}
