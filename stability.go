package fdx

import "fdx/internal/core"

// StabilityOptions configures DiscoverStable.
type StabilityOptions struct {
	// Runs is the number of resampled discovery runs (default 20).
	Runs int
	// MinFrequency is the fraction of runs an edge must recur in to be
	// kept (default 0.7).
	MinFrequency float64
	// SampleFraction is the fraction of tuples drawn per run (default 0.8).
	SampleFraction float64
	// Seed drives resampling.
	Seed int64
}

// EdgeStability reports how often a dependency edge recurred across the
// resampled runs.
type EdgeStability struct {
	LHS, RHS  string
	Frequency float64
}

// DiscoverStable runs FDX on repeated subsamples of the relation and keeps
// only the dependency edges that recur in at least MinFrequency of the
// runs — stability selection in the sense of Meinshausen & Bühlmann,
// trading a small amount of recall for strong false-discovery control on
// very noisy data. It returns the stable FDs and the full per-edge
// frequency table (sorted by descending frequency).
func DiscoverStable(rel *Relation, opts Options, sopts StabilityOptions) ([]FD, []EdgeStability, error) {
	copts := core.Options{
		Lambda:      opts.Lambda,
		Threshold:   opts.Threshold,
		RelFraction: opts.RelFraction,
		Ordering:    opts.Ordering,
		Seed:        opts.Seed,
		Transform: core.TransformOptions{
			Seed:           opts.Seed,
			MaxRows:        opts.MaxRows,
			NumericTol:     opts.NumericTolerance,
			TextSimilarity: opts.TextSimilarity,
		},
	}
	fds, freqs, err := core.StabilitySelection(rel, copts, core.StabilityOptions{
		Runs:           sopts.Runs,
		MinFrequency:   sopts.MinFrequency,
		SampleFraction: sopts.SampleFraction,
		Seed:           sopts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	names := rel.AttrNames()
	var outFDs []FD
	for _, fd := range fds {
		outFDs = append(outFDs, fdFromCore(fd, names))
	}
	var outFreqs []EdgeStability
	for _, f := range freqs {
		outFreqs = append(outFreqs, EdgeStability{
			LHS: names[f.LHS], RHS: names[f.RHS], Frequency: f.Frequency,
		})
	}
	return outFDs, outFreqs, nil
}
