package fdx_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"fdx"
)

func TestAccumulatorStreamedDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := fdx.NewAccumulator([]string{"zip", "city", "state"}, fdx.Options{Seed: 9})
	cities := []string{"chicago", "madison", "milwaukee", "duluth"}
	states := []string{"il", "wi", "wi", "mn"}
	for batch := 0; batch < 4; batch++ {
		rel := fdx.NewRelation("batch", "zip", "city", "state")
		for i := 0; i < 300; i++ {
			c := rng.Intn(len(cities))
			rel.AppendRow([]string{fmt.Sprintf("%d", 60000+c*7+rng.Intn(3)), cities[c], states[c]})
		}
		if err := acc.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Rows() != 1200 || acc.Batches() != 4 {
		t.Errorf("rows=%d batches=%d", acc.Rows(), acc.Batches())
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	foundCity := false
	for _, fd := range res.FDs {
		if fd.RHS == "city" || fd.RHS == "state" {
			foundCity = true
		}
	}
	if !foundCity {
		t.Errorf("streamed FDs missing: %v", res.FDs)
	}
	if res.ModelDuration <= 0 {
		t.Error("model duration not recorded")
	}
}

func TestAccumulatorRejectsBadBatch(t *testing.T) {
	acc := fdx.NewAccumulator([]string{"a", "b"}, fdx.Options{})
	bad := fdx.NewRelation("t", "x", "y")
	bad.AppendRow([]string{"1", "2"})
	bad.AppendRow([]string{"1", "2"})
	if err := acc.Add(bad); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := acc.Discover(); err == nil {
		t.Error("empty accumulator discover should error")
	}
}

// TestLoadCheckpointCountsTornTail: a WAL whose last record was torn
// mid-append restores fine (the torn batch is dropped by design), but the
// truncation must be visible on the fdx_wal_torn_tail_total metric rather
// than silent.
func TestLoadCheckpointCountsTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	opts := fdx.Options{Seed: 3}
	dir := t.TempDir()
	ckpt := dir + "/state.fdx"

	rel := noisyAddressRelation(rng, 240, 0.02)
	acc := fdx.NewAccumulator(rel.AttrNames(), opts)
	if err := acc.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	wal, err := fdx.OpenWAL(ckpt + fdx.WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if err := acc.AddLogged(rel.Slice(b*100, (b+1)*100), wal); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second record: drop the final 5 bytes of the log.
	info, err := os.Stat(ckpt + fdx.WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(ckpt+fdx.WALSuffix, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	opts.Metrics = fdx.NewMetrics()
	restored, err := fdx.LoadCheckpoint(ckpt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Batches() != 1 {
		t.Errorf("restored %d batches, want 1 (torn second batch dropped)", restored.Batches())
	}
	if got := opts.Metrics.Counter("fdx_wal_torn_tail_total").Value(); got != 1 {
		t.Errorf("fdx_wal_torn_tail_total = %d, want 1", got)
	}

	// An intact log must not count a torn tail.
	opts2 := fdx.Options{Seed: 3, Metrics: fdx.NewMetrics()}
	if err := os.Truncate(ckpt+fdx.WALSuffix, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fdx.LoadCheckpoint(ckpt, opts2); err != nil {
		t.Fatal(err)
	}
	if got := opts2.Metrics.Counter("fdx_wal_torn_tail_total").Value(); got != 0 {
		t.Errorf("intact wal counted torn tail: %d", got)
	}
}
