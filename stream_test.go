package fdx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fdx"
)

func TestAccumulatorStreamedDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := fdx.NewAccumulator([]string{"zip", "city", "state"}, fdx.Options{Seed: 9})
	cities := []string{"chicago", "madison", "milwaukee", "duluth"}
	states := []string{"il", "wi", "wi", "mn"}
	for batch := 0; batch < 4; batch++ {
		rel := fdx.NewRelation("batch", "zip", "city", "state")
		for i := 0; i < 300; i++ {
			c := rng.Intn(len(cities))
			rel.AppendRow([]string{fmt.Sprintf("%d", 60000+c*7+rng.Intn(3)), cities[c], states[c]})
		}
		if err := acc.Add(rel); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Rows() != 1200 || acc.Batches() != 4 {
		t.Errorf("rows=%d batches=%d", acc.Rows(), acc.Batches())
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	foundCity := false
	for _, fd := range res.FDs {
		if fd.RHS == "city" || fd.RHS == "state" {
			foundCity = true
		}
	}
	if !foundCity {
		t.Errorf("streamed FDs missing: %v", res.FDs)
	}
	if res.ModelDuration <= 0 {
		t.Error("model duration not recorded")
	}
}

func TestAccumulatorRejectsBadBatch(t *testing.T) {
	acc := fdx.NewAccumulator([]string{"a", "b"}, fdx.Options{})
	bad := fdx.NewRelation("t", "x", "y")
	bad.AppendRow([]string{"1", "2"})
	bad.AppendRow([]string{"1", "2"})
	if err := acc.Add(bad); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := acc.Discover(); err == nil {
		t.Error("empty accumulator discover should error")
	}
}
