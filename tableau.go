package fdx

import (
	"fdx/internal/cfd"
)

// TableauPattern is one row of a conditional-FD tableau: a constant LHS
// assignment, its dominant RHS value, and how well the FD holds there.
type TableauPattern struct {
	LHSValues  []string
	RHSValue   string
	Support    int
	Confidence float64
}

// Tableau refines an approximate FD into its conditional form: per
// LHS-pattern support and confidence, separating the subdomains where the
// dependency holds exactly from those carrying violations.
type Tableau struct {
	FD       FD
	Patterns []TableauPattern
	// GlobalConfidence is the support-weighted mean confidence; 1 iff the
	// FD holds exactly wherever its determinant is fully present.
	GlobalConfidence float64
}

// TableauOptions configures BuildTableau.
type TableauOptions struct {
	// MinSupport drops patterns with fewer matching tuples (default 2).
	MinSupport int
	// MinConfidence drops patterns below this confidence (default 0).
	MinConfidence float64
	// MaxPatterns caps the tableau size (default 64).
	MaxPatterns int
}

// BuildTableau computes the conditional refinement of a discovered FD —
// the pattern-tableau reading of conditional functional dependencies.
func BuildTableau(rel *Relation, fd FD, opts TableauOptions) (*Tableau, error) {
	cf, err := fdToCore(fd, rel)
	if err != nil {
		return nil, err
	}
	t := cfd.Build(rel, cf, cfd.Options{
		MinSupport:    opts.MinSupport,
		MinConfidence: opts.MinConfidence,
		MaxPatterns:   opts.MaxPatterns,
	})
	out := &Tableau{FD: fd, GlobalConfidence: t.GlobalConfidence}
	for _, p := range t.Patterns {
		out.Patterns = append(out.Patterns, TableauPattern{
			LHSValues:  p.LHSValues,
			RHSValue:   p.RHSValue,
			Support:    p.Support,
			Confidence: p.Confidence,
		})
	}
	return out, nil
}

// CleanPatterns returns the patterns holding exactly (confidence 1).
func (t *Tableau) CleanPatterns() []TableauPattern {
	var out []TableauPattern
	for _, p := range t.Patterns {
		//fdx:lint-ignore floatcmp confidence is a count ratio; it is exactly 1 iff the pattern holds on every supporting tuple
		if p.Confidence == 1 {
			out = append(out, p)
		}
	}
	return out
}

// DirtyPatterns returns patterns carrying violations, most-violated first.
func (t *Tableau) DirtyPatterns() []TableauPattern {
	var out []TableauPattern
	for _, p := range t.Patterns {
		if p.Confidence < 1 {
			out = append(out, p)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Confidence > out[j].Confidence; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
