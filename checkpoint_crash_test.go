package fdx_test

// Crash-equivalence suite (run by `make test-crash`): a streaming session
// that is killed at ANY byte of its durable state — mid-WAL-append,
// between a snapshot save and its WAL reset, mid-snapshot-write — must
// either resume to results bit-for-bit identical with an uninterrupted
// run, or fail with a typed corruption error. Never a panic, never a
// silently different answer.

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fdx"
)

const (
	crashBatches   = 6  // stream length in batches
	crashBatchRows = 60 // rows per batch
	crashSaveEvery = 2  // snapshot interval in batches
)

func crashOpts() fdx.Options { return fdx.Options{Seed: 42} }

// crashBatch deterministically regenerates batch b of the stream, so an
// interrupted run can re-feed exactly the batches the checkpoint lost.
func crashBatch(b int) *fdx.Relation {
	rng := rand.New(rand.NewSource(1000 + int64(b)))
	return noisyAddressRelation(rng, crashBatchRows, 0.02)
}

// crashReference runs the stream uninterrupted and returns its result.
func crashReference(t *testing.T) *fdx.Result {
	t.Helper()
	acc := fdx.NewAccumulator(crashBatch(0).AttrNames(), crashOpts())
	for b := 0; b < crashBatches; b++ {
		if err := acc.Add(crashBatch(b)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runDurable streams the first m batches with WAL-per-batch and a
// checkpoint every crashSaveEvery batches (plus the initial empty-state
// checkpoint a fresh `fdx stream` writes), then returns the checkpoint
// path. The on-disk bytes afterwards are exactly what a kill right after
// batch m would leave behind.
func runDurable(t *testing.T, dir string, m int) string {
	t.Helper()
	path := filepath.Join(dir, "state.fdx")
	acc := fdx.NewAccumulator(crashBatch(0).AttrNames(), crashOpts())
	if err := acc.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	wal, err := fdx.OpenWAL(path + fdx.WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	for b := 0; b < m; b++ {
		if err := acc.AddLogged(crashBatch(b), wal); err != nil {
			t.Fatal(err)
		}
		if (b+1)%crashSaveEvery == 0 {
			if err := acc.SaveCheckpoint(path); err != nil {
				t.Fatal(err)
			}
			if err := wal.Reset(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return path
}

// finishAndCompare restores from path, completes the stream, and asserts
// the result is identical to the uninterrupted reference.
func finishAndCompare(t *testing.T, path string, ref *fdx.Result) *fdx.Accumulator {
	t.Helper()
	acc, err := fdx.LoadCheckpoint(path, crashOpts())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for b := acc.Batches(); b < crashBatches; b++ {
		if err := acc.Add(crashBatch(b)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := acc.Discover()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, res, ref)
	return acc
}

// TestCrashEquivalenceAtEveryWALTruncation kills the stream after each
// batch count m and, for every byte-truncation point of the WAL left on
// disk, restores and finishes the stream. Every kill point must yield the
// reference result exactly; the restored batch count may lag m by at most
// the batches sitting in the truncated WAL tail.
func TestCrashEquivalenceAtEveryWALTruncation(t *testing.T) {
	ref := crashReference(t)
	for m := 0; m <= crashBatches; m++ {
		dir := t.TempDir()
		path := runDurable(t, dir, m)
		walBytes, err := os.ReadFile(path + fdx.WALSuffix)
		if err != nil {
			t.Fatal(err)
		}
		snapBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lastSave := (m / crashSaveEvery) * crashSaveEvery

		// States restored from cuts between the same record boundary are
		// byte-identical; verify the full pipeline once per distinct state
		// and cheap invariants for every cut.
		cutDir := t.TempDir()
		cutPath := filepath.Join(cutDir, "state.fdx")
		if err := os.WriteFile(cutPath, snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		verified := map[string]bool{}
		for cut := 0; cut <= len(walBytes); cut++ {
			if err := os.WriteFile(cutPath+fdx.WALSuffix, walBytes[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			acc, err := fdx.LoadCheckpoint(cutPath, crashOpts())
			if err != nil {
				t.Fatalf("m=%d cut=%d: restore failed: %v", m, cut, err)
			}
			if b := acc.Batches(); b < lastSave || b > m {
				t.Fatalf("m=%d cut=%d: restored %d batches, want within [%d, %d]", m, cut, b, lastSave, m)
			}
			var sb bytes.Buffer
			if err := acc.Snapshot(&sb); err != nil {
				t.Fatal(err)
			}
			if verified[sb.String()] {
				continue
			}
			verified[sb.String()] = true
			finishAndCompare(t, cutPath, ref)
		}
		// Every record boundary (0..full) must have appeared as a state.
		if want := len(walBytes)/walRecordLen(t, m, len(walBytes)) + 1; len(verified) != want {
			t.Fatalf("m=%d: saw %d distinct restored states, want %d", m, len(verified), want)
		}
	}
}

// walRecordLen infers the fixed record length of the homogeneous test WAL.
func walRecordLen(t *testing.T, m, totalBytes int) int {
	t.Helper()
	records := m % crashSaveEvery
	if records == 0 {
		return totalBytes + 1 // empty WAL: any positive divisor works
	}
	if totalBytes%records != 0 {
		t.Fatalf("wal of %d bytes does not divide into %d records", totalBytes, records)
	}
	return totalBytes / records
}

// TestCrashKillBetweenSaveAndReset covers the window where the snapshot
// already includes the WAL's batches but the WAL has not been reset yet:
// replay must skip the stale records, not double-count them.
func TestCrashKillBetweenSaveAndReset(t *testing.T) {
	ref := crashReference(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.fdx")
	acc := fdx.NewAccumulator(crashBatch(0).AttrNames(), crashOpts())
	wal, err := fdx.OpenWAL(path + fdx.WALSuffix)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	for b := 0; b < 3; b++ {
		if err := acc.AddLogged(crashBatch(b), wal); err != nil {
			t.Fatal(err)
		}
	}
	// Save WITHOUT resetting the WAL: the crash hit between the two.
	if err := acc.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	restored := finishAndCompare(t, path, ref)
	if restored.Rows() != crashBatches*crashBatchRows {
		t.Errorf("restored run absorbed %d rows, want %d (stale WAL records double-counted?)", restored.Rows(), crashBatches*crashBatchRows)
	}
}

// TestCrashSnapshotTruncationIsTyped truncates the snapshot itself at
// every byte (simulating torn storage below the atomic-rename protocol)
// and requires a typed corruption/version error each time.
func TestCrashSnapshotTruncationIsTyped(t *testing.T) {
	dir := t.TempDir()
	path := runDurable(t, dir, 4)
	snapBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cutDir := t.TempDir()
	cutPath := filepath.Join(cutDir, "state.fdx")
	for cut := 0; cut < len(snapBytes); cut++ {
		if err := os.WriteFile(cutPath, snapBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := fdx.LoadCheckpoint(cutPath, crashOpts())
		if err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) accepted", cut, len(snapBytes))
		}
		if !errors.Is(err, fdx.ErrCorruptCheckpoint) && !errors.Is(err, fdx.ErrCheckpointVersion) {
			t.Fatalf("cut=%d: error outside taxonomy: %v", cut, err)
		}
	}
}

// TestCrashLeftoverTempFileIgnored: a kill mid-save leaves a partial
// *.tmp-* file beside the checkpoint; resume must ignore it.
func TestCrashLeftoverTempFileIgnored(t *testing.T) {
	ref := crashReference(t)
	dir := t.TempDir()
	path := runDurable(t, dir, crashBatches)
	if err := os.WriteFile(path+".tmp-1234", []byte("FDXCKPT1 torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	finishAndCompare(t, path, ref)
}
