package fdx_test

import (
	"errors"
	"strings"
	"testing"

	"fdx"
)

// FuzzDiscover feeds arbitrary CSV text through the full pipeline. The
// invariant under test is the package contract: Discover never panics — it
// either returns a valid Result or an error matching the taxonomy in
// errors.go. Run longer campaigns with:
//
//	go test -fuzz FuzzDiscover -fuzztime 30s .
func FuzzDiscover(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("a,b,c\n1,2,3\n1,2,4\n1,2,5\n2,9,3\n")
	f.Add("x\nv\nv\nv\n")
	f.Add("a,a\n1,2\n3,4\n")                // duplicate header
	f.Add("a,b\n,\n,\n,\n")                 // all NULLs
	f.Add("a,b\n1\n1,2,3\n")                // ragged rows
	f.Add("n,m\n1.5,2e3\nNaN,Inf\n-0,+0\n") // numeric parsing edge cases
	f.Add("a,b\n\"x,y\",z\n\"q\"\"q\",w\n") // quoting
	f.Add("")
	f.Add("\xff\xfe,b\n1,2\n")

	f.Fuzz(func(t *testing.T, data string) {
		// Cap the work per input so the campaign explores inputs rather than
		// grinding large pipelines: the pipeline itself is O(k²·n) and is
		// size-tested elsewhere.
		if len(data) > 4096 {
			t.Skip("oversized input")
		}
		rel, err := fdx.ReadCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return // malformed CSV is the reader's concern, not Discover's
		}
		if rel.NumCols() > 8 || rel.NumRows() > 64 {
			t.Skip("oversized relation")
		}
		res, err := fdx.Discover(rel, fdx.Options{})
		if err != nil {
			if !errors.Is(err, fdx.ErrBadInput) &&
				!errors.Is(err, fdx.ErrSingularCovariance) &&
				!errors.Is(err, fdx.ErrNonPositivePivot) &&
				!errors.Is(err, fdx.ErrNotConverged) &&
				!errors.Is(err, fdx.ErrInternal) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
			return
		}
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		k := rel.NumCols()
		if len(res.B) != k {
			t.Fatalf("B has %d rows, want %d", len(res.B), k)
		}
		attrs := make(map[string]bool, k)
		for _, n := range rel.AttrNames() {
			attrs[n] = true
		}
		for _, fd := range res.FDs {
			if len(fd.LHS) == 0 || !attrs[fd.RHS] {
				t.Fatalf("malformed FD %+v", fd)
			}
			for _, l := range fd.LHS {
				if !attrs[l] {
					t.Fatalf("FD %v references unknown attribute %q", fd, l)
				}
			}
		}
	})
}
