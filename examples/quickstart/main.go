// Quickstart: discover functional dependencies in a small in-memory table.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fdx"
)

func main() {
	// A tiny address table: zip determines city and state, but the data is
	// noisy — one zip appears with a misspelled city.
	rel := fdx.NewRelation("addresses", "name", "zip", "city", "state")
	rows := [][]string{
		{"harry caray's", "60611", "chicago", "il"},
		{"mity nice bar", "60611", "chicago", "il"},
		{"foodlife", "60611", "chicago", "il"},
		{"pierrot", "60612", "chicago", "il"},
		{"graft", "60612", "cicago", "il"}, // typo!
		{"gene's", "53703", "madison", "wi"},
		{"graze", "53703", "madison", "wi"},
		{"merchant", "53703", "madison", "wi"},
		{"brasserie v", "53711", "madison", "wi"},
		{"greenbush", "53711", "madison", "wi"},
	}
	// Repeat the pattern with more zips so the statistics are meaningful.
	for i := 0; i < 30; i++ {
		zip := fmt.Sprintf("537%02d", i)
		city := "madison"
		state := "wi"
		if i%3 == 0 {
			zip = fmt.Sprintf("606%02d", i)
			city = "chicago"
			state = "il"
		}
		for j := 0; j < 4; j++ {
			rows = append(rows, []string{fmt.Sprintf("venue-%d-%d", i, j), zip, city, state})
		}
	}
	for _, r := range rows {
		if err := rel.AppendRow(r); err != nil {
			log.Fatal(err)
		}
	}

	res, err := fdx.Discover(rel, fdx.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d FDs in %v:\n", len(res.FDs), res.TransformDuration+res.ModelDuration)
	for _, fd := range res.FDs {
		fmt.Printf("  %s  (score %.2f)\n", fd, fd.Score)
	}
	fmt.Println("\nautoregression matrix:")
	fmt.Print(res.Heatmap())
}
