// Streaming discovery: maintain FDs over an append-only table.
//
// The Accumulator folds each arriving batch's pair statistics into running
// sums, so re-deriving the dependency model after every batch costs only
// the structure-learning phase (quadratic in columns, independent of
// history size). The example streams a synthetic orders feed whose
// dependency structure drifts mid-stream — a new warehouse assignment rule
// appears — and shows the model picking it up.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdx"
)

func batch(rng *rand.Rand, n int, ruleActive bool) *fdx.Relation {
	rel := fdx.NewRelation("orders", "sku", "category", "region", "warehouse")
	categories := []string{"grocery", "electronics", "apparel", "toys", "garden"}
	for i := 0; i < n; i++ {
		sku := rng.Intn(40)
		cat := categories[sku%len(categories)] // sku -> category always holds
		region := rng.Intn(6)
		warehouse := rng.Intn(8)
		if ruleActive {
			// New routing rule: the region determines the warehouse.
			warehouse = region + 1
		}
		rel.AppendRow([]string{
			fmt.Sprintf("sku-%d", sku), cat,
			fmt.Sprintf("r%d", region), fmt.Sprintf("w%d", warehouse),
		})
	}
	return rel
}

func main() {
	rng := rand.New(rand.NewSource(1))
	acc := fdx.NewAccumulator([]string{"sku", "category", "region", "warehouse"}, fdx.Options{Seed: 1})

	for b := 1; b <= 8; b++ {
		ruleActive := b > 4 // routing rule deployed half-way through
		if err := acc.Add(batch(rng, 500, ruleActive)); err != nil {
			log.Fatal(err)
		}
		res, err := acc.Discover()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after batch %d (%d rows, model re-derived in %v):\n",
			b, acc.Rows(), res.ModelDuration)
		if len(res.FDs) == 0 {
			fmt.Println("  (no dependencies yet)")
		}
		for _, fd := range res.FDs {
			fmt.Printf("  %s  (score %.2f)\n", fd, fd.Score)
		}
		fmt.Println()
	}
	fmt.Println("The region->warehouse rule deployed at batch 5 surfaces once")
	fmt.Println("enough post-deployment pairs outweigh the earlier random routing.")
}
