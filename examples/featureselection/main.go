// Feature selection: the paper's §5.5 feature-engineering case study
// (Figure 5).
//
// FDX profiles the Australian Credit Approval and Mammographic data sets
// and reads the determinants of the prediction target straight off the
// learned autoregression matrix — without training any model. For
// Mammographic, the mass shape and margin determine severity, and severity
// determines the BI-RADS assessment, matching the medical literature the
// paper cites.
//
// Run with:
//
//	go run ./examples/featureselection
package main

import (
	"fmt"
	"log"

	"fdx"
	"fdx/internal/realdata"
)

func analyze(name, target string) {
	rel, err := realdata.ByName(name, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Low-cardinality binary attributes dilute pair-agreement
	// coefficients, so profiling small diagnostic tables uses a lower
	// edge threshold than the discovery default.
	res, err := fdx.Discover(rel, fdx.Options{Seed: 1, Threshold: 0.08, RelFraction: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s (goal attribute: %s) ===\n\n", name, target)
	fmt.Print(res.Heatmap())
	fmt.Println()

	found := false
	for _, fd := range res.FDs {
		if fd.RHS == target {
			fmt.Printf("  %v determine %s -> use them as features\n", fd.LHS, target)
			found = true
		}
		for _, l := range fd.LHS {
			if l == target {
				fmt.Printf("  %s determines %s -> %s leaks the target, drop it\n",
					target, fd.RHS, fd.RHS)
				found = true
			}
		}
	}
	if !found {
		fmt.Printf("  no dependency involves %s at the default threshold\n", target)
	}
	fmt.Println()
}

func main() {
	analyze("australian", "A15")
	analyze("mammographic", "severity")
}
