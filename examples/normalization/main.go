// Schema normalization: from discovered FDs to a 3NF design.
//
// The paper's introduction motivates FD discovery with database
// normalization. This example profiles a denormalized shipment table,
// checks it against BCNF, and synthesizes a lossless, dependency-
// preserving 3NF decomposition from the discovered dependencies.
//
// Run with:
//
//	go run ./examples/normalization
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fdx"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	rel := fdx.NewRelation("shipments",
		"shipment", "sku", "product", "unit_price", "zip", "city", "state")
	products := []string{"widget", "sprocket", "flange", "gizmo", "doohickey"}
	prices := []string{"9.99", "4.25", "17.00", "2.50", "33.10"}
	cities := []string{"chicago", "madison", "milwaukee", "duluth", "rockford", "st paul"}
	states := []string{"il", "wi", "wi", "mn", "il", "mn"}
	for i := 0; i < 1500; i++ {
		sku := rng.Intn(len(products))
		c := rng.Intn(len(cities))
		rel.AppendRow([]string{
			fmt.Sprintf("sh-%d", i),
			fmt.Sprintf("sku-%d", sku),
			products[sku], prices[sku],
			fmt.Sprintf("%d", 60000+c*13+rng.Intn(2)),
			cities[c], states[c],
		})
	}

	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered dependencies:")
	for _, fd := range res.FDs {
		fmt.Printf("  %s\n", fd)
	}

	keys, err := fdx.CandidateKeys(rel, res.FDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidate keys:")
	for _, k := range keys {
		fmt.Printf("  (%s)\n", strings.Join(k, ", "))
	}

	ok, viol, err := fdx.IsBCNF(rel, res.FDs)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Println("\nschema is already in BCNF")
	} else {
		fmt.Printf("\nschema violates BCNF (e.g. %s) — synthesizing 3NF:\n\n", viol)
	}

	tables, err := fdx.Synthesize3NF(rel, res.FDs)
	if err != nil {
		log.Fatal(err)
	}
	for _, tb := range tables {
		fmt.Printf("  %s(%s)  key (%s)\n",
			tb.Name, strings.Join(tb.Attributes, ", "), strings.Join(tb.Key, ", "))
	}
	fmt.Println("\nThe decomposition is lossless and dependency-preserving;")
	fmt.Println("redundant product and geography facts now live in their own tables.")
}
