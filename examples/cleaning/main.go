// Cleaning guidance: the paper's Table 7 use case.
//
// FDX's output predicts whether automated data cleaning will work: masked
// cells of attributes that participate in an FDX dependency impute far
// better than cells of independent attributes. This example masks 20% of
// each attribute of the Mammographic data set, imputes with two learners,
// and groups the accuracies by FD participation.
//
// Run with:
//
//	go run ./examples/cleaning
package main

import (
	"fmt"
	"log"

	"fdx"
	"fdx/internal/impute"
	"fdx/internal/realdata"
)

func main() {
	rel, err := realdata.ByName("mammographic", 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FDX dependencies:")
	for _, fd := range res.FDs {
		fmt.Printf("  %s\n", fd)
	}
	fmt.Println()

	imputers := []impute.Imputer{&impute.KNN{Seed: 1}, &impute.Boost{Seed: 1}}
	fmt.Printf("%-10s  %-28s  %-8s  %s\n", "imputer", "attribute", "accuracy", "FDX profile")
	fmt.Println("--------------------------------------------------------------------")
	for _, imp := range imputers {
		for j, attr := range rel.AttrNames() {
			if rel.Columns[j].Cardinality() > rel.NumRows()/2 {
				continue // near-key: nothing could impute it
			}
			m := impute.MaskRandom(rel, j, 0.2, int64(j))
			if len(m.Rows) == 0 {
				continue
			}
			acc := impute.Accuracy(imp.Impute(m), m.Truth)
			profile := "independent -> expect poor imputation"
			if res.HasFDWith(attr) {
				profile = "in a dependency -> expect good imputation"
			}
			fmt.Printf("%-10s  %-28s  %-8.3f  %s\n", imp.Name(), attr, acc, profile)
		}
	}
}
