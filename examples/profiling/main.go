// Data profiling: the paper's Hospital case study (Figure 3).
//
// FDX profiles a noisy hospital quality data set with naturally-missing
// values, recovering the entity structure (provider → hospital attributes,
// measure code → measure attributes) directly from the data, and renders
// the autoregression matrix it learned.
//
// Run with:
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"

	"fdx"
	"fdx/internal/realdata"
)

func main() {
	rel, err := realdata.ByName("hospital", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling %s: %d rows, %d attributes, %.1f%% missing cells\n\n",
		rel.Name, rel.NumRows(), rel.NumCols(), 100*rel.MissingRate())

	res, err := fdx.Discover(rel, fdx.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovered dependencies:")
	for _, fd := range res.FDs {
		fmt.Printf("  %s\n", fd)
	}

	fmt.Println("\nautoregression matrix (the paper's Figure 3 heatmap):")
	fmt.Print(res.Heatmap())

	fmt.Println("\nprofiling read-out:")
	for _, attr := range res.Attributes {
		status := "independent"
		if res.HasFDWith(attr) {
			status = "participates in a dependency"
		}
		fmt.Printf("  %-18s %s\n", attr, status)
	}
	fmt.Println("\nAttributes in dependencies are good candidates for rule-based")
	fmt.Println("cleaning and for automated imputation (see examples/cleaning).")
}
