package fdx

import (
	"io"

	"fdx/internal/checkpoint"
	"fdx/internal/core"
	"fdx/internal/faults"
	"fdx/internal/fdxerr"
	"fdx/internal/obs"
	"fdx/internal/par"
)

// Sharded discovery. The accumulator's sufficient statistics are sums of
// per-batch contributions, and the pair transform emits only 0/1 samples,
// so every accumulated count, sum, and outer-product entry is an
// integer-valued float64 — addition over them is exact and associative.
// Shards can therefore absorb disjoint spans of the batch grid
// independently and Merge back into a state bit-identical to the
// sequential run, at any shard count and in any merge order; MergeShards
// nevertheless folds through one fixed binary tree so even a future
// non-integer statistic would stay reproducible.
//
// The batch grid is global: batch i of the full stream keeps transform
// seed Options.Seed + i no matter which shard absorbs it (AddAt), which
// is what makes shard assignment invisible in the result.

// BatchRange is a half-open interval [Lo, Hi) of global batch indices —
// the unit of shard coverage. See core.BatchRange.
type BatchRange = core.BatchRange

// ShardSpans partitions the batch grid [0, total) into the given number
// of contiguous spans, balanced to within one batch (the first total %
// shards spans take the extra batch). The split is a pure function of
// (total, shards); shards beyond total get empty spans.
func ShardSpans(total, shards int) []BatchRange {
	if shards < 1 || total < 0 {
		return nil
	}
	spans := make([]BatchRange, shards)
	base, rem := total/shards, total%shards
	lo := 0
	for s := range spans {
		n := base
		if s < rem {
			n++
		}
		spans[s] = BatchRange{Lo: lo, Hi: lo + n}
		lo += n
	}
	return spans
}

// Coverage returns the accumulator's batch coverage: the sorted,
// disjoint global-batch intervals it has absorbed. A sequential stream
// covers [0, Batches()); a shard covers its assigned span's prefix.
func (a *Accumulator) Coverage() []BatchRange { return a.inner.Coverage() }

// NextGlobal returns the global batch index Add would absorb at next:
// one past the last covered batch (0 when empty).
func (a *Accumulator) NextGlobal() int { return a.inner.NextGlobal() }

// AddAt absorbs one batch at an explicit global batch index — the
// sharding entry point. The batch's transform seed is Options.Seed +
// global regardless of which shard (or process) absorbs it, so the
// folded statistics are bit-identical to the sequential run's. The index
// must not already be covered.
func (a *Accumulator) AddAt(rel *Relation, global int) (err error) {
	defer guard("fdx: Accumulator.AddAt", &err)
	_, err = a.inner.AbsorbAt(rel, global)
	return err
}

// AddLoggedAt is AddAt with the durable-WAL contract of AddLogged: the
// batch's delta (including its global index) is fsynced to w before
// returning.
func (a *Accumulator) AddLoggedAt(rel *Relation, global int, w *WAL) (err error) {
	defer guard("fdx: AddLoggedAt", &err)
	d, err := a.inner.AbsorbAt(rel, global)
	if err != nil {
		return err
	}
	return a.logDelta(d, w)
}

// Merge folds another accumulator's statistics into this one. Both sides
// must have been accumulated under fingerprint-identical options (Seed,
// MaxRows, NumericTolerance, TextSimilarity) and identical schemas, and
// their batch coverages must not partially overlap — violations return
// ErrShardMismatch and change nothing. A donor entirely contained in
// this accumulator's coverage is a duplicate delivery: Merge reports
// applied=false and changes nothing, making shard shipping idempotent.
// The donor is never modified.
func (a *Accumulator) Merge(other *Accumulator) (applied bool, err error) {
	defer guard("fdx: Accumulator.Merge", &err)
	if other == nil {
		return false, fdxerr.BadInput("fdx: nil merge donor")
	}
	ours, theirs := checkpoint.Fingerprint(a.inner.Options()), checkpoint.Fingerprint(other.inner.Options())
	if ours != theirs {
		return false, fdxerr.ShardMismatch(
			"fdx: merge donor was accumulated under different options (fingerprint %016x, ours %016x); Seed, MaxRows, NumericTolerance and TextSimilarity must match",
			theirs, ours)
	}
	applied, err = a.inner.Merge(other.inner)
	if err != nil {
		return false, err
	}
	if applied {
		a.inner.Options().Obs.Count(obs.MShardMerges, 1)
	}
	return applied, nil
}

// MergeSnapshot decodes a shard snapshot (the checkpoint wire format —
// what Snapshot writes and SaveCheckpoint stores) from r and merges it
// in. The snapshot is fully decoded and validated before any state
// changes: arbitrary or bit-flipped bytes surface ErrCorruptCheckpoint
// (or ErrCheckpointVersion), a fingerprint or coverage conflict
// ErrShardMismatch, and in every failure case the accumulator is left
// exactly as it was. Duplicate deliveries report applied=false.
func (a *Accumulator) MergeSnapshot(r io.Reader) (applied bool, err error) {
	defer guard("fdx: MergeSnapshot", &err)
	st, fingerprint, err := checkpoint.ReadSnapshot(shardFaultReader{r})
	if err != nil {
		return false, err
	}
	copts := a.inner.Options()
	if ours := checkpoint.Fingerprint(copts); fingerprint != ours {
		return false, fdxerr.ShardMismatch(
			"fdx: shard snapshot was taken under different options (fingerprint %016x, ours %016x); Seed, MaxRows, NumericTolerance and TextSimilarity must match",
			fingerprint, ours)
	}
	donor, err := core.NewAccumulatorFromState(st, copts)
	if err != nil {
		// Checksums passed but the state is impossible: corrupt bytes, not
		// a caller mistake.
		return false, fdxerr.Corrupt("fdx: shard snapshot state rejected: %v", err)
	}
	applied, err = a.inner.Merge(donor)
	if err != nil {
		return false, err
	}
	if applied {
		copts.Obs.Count(obs.MShardMerges, 1)
	}
	return applied, nil
}

// shardFaultReader flips one bit of the first byte it reads when the
// MergeCorrupt fault fires, driving the chaos suite's contract that a
// corrupt shard snapshot surfaces ErrCorruptCheckpoint and never poisons
// the merged state.
type shardFaultReader struct{ r io.Reader }

func (fr shardFaultReader) Read(p []byte) (int, error) {
	n, err := fr.r.Read(p)
	if n > 0 && faults.Fire(faults.MergeCorrupt) {
		p[0] ^= 0x20
	}
	return n, err
}

// MergeShards folds the shard accumulators into shards[0] through a
// fixed binary reduction tree (internal/par.Reduce): the merge order is
// a function of the shard count alone, never of workers or scheduling,
// so the result is reproducible run to run. The statistics themselves
// are integer-valued (see the package comment above), so the folded
// state is bit-identical to the sequential run regardless of order — the
// fixed tree is belt and suspenders. Returns shards[0], which now holds
// the union; the other entries are unchanged but share no coverage with
// the result's, so the slice should be discarded. Any incompatibility
// (ErrShardMismatch) or invalid entry aborts the fold.
func MergeShards(shards []*Accumulator, workers int) (acc *Accumulator, err error) {
	defer guard("fdx: MergeShards", &err)
	if len(shards) == 0 {
		return nil, fdxerr.BadInput("fdx: no shards to merge")
	}
	for i, s := range shards {
		if s == nil {
			return nil, fdxerr.BadInput("fdx: shard %d is nil", i)
		}
	}
	if workers > (len(shards)+1)/2 {
		workers = (len(shards) + 1) / 2
	}
	pool := par.New(workers)
	defer pool.Close()
	if err := pool.Reduce(len(shards), func(dst, src int) error {
		_, merr := shards[dst].Merge(shards[src])
		return merr
	}); err != nil {
		return nil, err
	}
	return shards[0], nil
}

// logDelta appends an absorbed batch's delta to the WAL with an fsync,
// recording the write in the accumulator's telemetry (shared by
// AddLogged and AddLoggedAt).
func (a *Accumulator) logDelta(d *core.BatchDelta, w *WAL) error {
	h := a.inner.Options().Obs
	sp := h.StartStage("wal-append")
	defer sp.End()
	n, err := w.inner.Append(d)
	if err != nil {
		return err
	}
	sp.Attr("bytes", n)
	h.Count(obs.MWALRecords, 1)
	h.Count(obs.MWALBytes, uint64(n))
	return nil
}
