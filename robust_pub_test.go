package fdx_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fdx"
	"fdx/internal/faults"
)

// keyedRelation builds a relation with an a→b dependency.
func keyedRelation(n int) *fdx.Relation {
	rel := fdx.NewRelation("t", "a", "b", "c")
	for i := 0; i < n; i++ {
		rel.AppendRow([]string{
			fmt.Sprintf("a%d", i%5),
			fmt.Sprintf("b%d", (i%5)*3),
			fmt.Sprintf("c%d", i%4),
		})
	}
	return rel
}

func TestDiscoverPathologicalRelations(t *testing.T) {
	t.Run("all-null column", func(t *testing.T) {
		rel := fdx.NewRelation("t", "a", "nulls", "b")
		for i := 0; i < 30; i++ {
			rel.AppendRow([]string{fmt.Sprintf("a%d", i%4), "", fmt.Sprintf("b%d", i%4)})
		}
		res, err := fdx.Discover(rel, fdx.Options{})
		if err != nil {
			t.Fatalf("Discover: %v", err)
		}
		if len(res.Attributes) != 3 {
			t.Errorf("Attributes = %v", res.Attributes)
		}
		// An all-NULL column matches nothing, so it can determine nothing.
		for _, f := range res.FDs {
			for _, l := range f.LHS {
				if l == "nulls" {
					t.Errorf("all-NULL column appears as determinant in %v", f)
				}
			}
		}
	})
	t.Run("single row", func(t *testing.T) {
		rel := fdx.NewRelation("t", "a", "b")
		rel.AppendRow([]string{"x", "y"})
		res, err := fdx.Discover(rel, fdx.Options{})
		if err != nil {
			t.Fatalf("Discover: %v", err)
		}
		if res == nil {
			t.Fatal("nil result")
		}
	})
	t.Run("single constant column", func(t *testing.T) {
		rel := fdx.NewRelation("t", "a")
		for i := 0; i < 10; i++ {
			rel.AppendRow([]string{"same"})
		}
		if _, err := fdx.Discover(rel, fdx.Options{}); err != nil {
			t.Fatalf("Discover: %v", err)
		}
	})
	t.Run("duplicate attribute names", func(t *testing.T) {
		rel := fdx.NewRelation("t", "a", "a")
		rel.AppendRow([]string{"1", "2"})
		rel.AppendRow([]string{"3", "4"})
		_, err := fdx.Discover(rel, fdx.Options{})
		if !errors.Is(err, fdx.ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("nil relation", func(t *testing.T) {
		_, err := fdx.Discover(nil, fdx.Options{})
		if !errors.Is(err, fdx.ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("empty relation", func(t *testing.T) {
		res, err := fdx.Discover(fdx.NewRelation("t"), fdx.Options{})
		if err != nil || len(res.FDs) != 0 {
			t.Fatalf("res = %v err = %v", res, err)
		}
	})
	t.Run("unknown ordering", func(t *testing.T) {
		_, err := fdx.Discover(keyedRelation(20), fdx.Options{Ordering: "bogus"})
		if !errors.Is(err, fdx.ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
}

func TestAccumulatorMismatchedSchema(t *testing.T) {
	acc := fdx.NewAccumulator([]string{"a", "b"}, fdx.Options{})
	wrongName := fdx.NewRelation("t", "a", "x")
	wrongName.AppendRow([]string{"1", "2"})
	wrongName.AppendRow([]string{"3", "4"})
	if err := acc.Add(wrongName); !errors.Is(err, fdx.ErrBadInput) {
		t.Errorf("wrong name: err = %v, want ErrBadInput", err)
	}
	wrongArity := fdx.NewRelation("t", "a", "b", "c")
	wrongArity.AppendRow([]string{"1", "2", "3"})
	wrongArity.AppendRow([]string{"4", "5", "6"})
	if err := acc.Add(wrongArity); !errors.Is(err, fdx.ErrBadInput) {
		t.Errorf("wrong arity: err = %v, want ErrBadInput", err)
	}
	if err := acc.Add(nil); !errors.Is(err, fdx.ErrBadInput) {
		t.Errorf("nil batch: err = %v, want ErrBadInput", err)
	}
	if _, err := acc.Discover(); !errors.Is(err, fdx.ErrBadInput) {
		t.Errorf("empty accumulator Discover: err = %v, want ErrBadInput", err)
	}
	good := fdx.NewRelation("t", "a", "b")
	for i := 0; i < 20; i++ {
		good.AppendRow([]string{fmt.Sprintf("a%d", i%3), fmt.Sprintf("b%d", i%3)})
	}
	if err := acc.Add(good); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if _, err := acc.Discover(); err != nil {
		t.Fatalf("Discover after valid batch: %v", err)
	}
}

func TestFaultPublicPanicGuard(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.InternalPanic, faults.Config{Times: 1})
	_, err := fdx.Discover(keyedRelation(30), fdx.Options{})
	if !errors.Is(err, fdx.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("err %q does not carry the panic value", err)
	}
	// The guard must not leave the process poisoned: the next call works.
	if _, err := fdx.Discover(keyedRelation(30), fdx.Options{}); err != nil {
		t.Fatalf("Discover after recovered panic: %v", err)
	}
}

func TestFaultAccumulatorPanicGuard(t *testing.T) {
	defer faults.Reset()
	acc := fdx.NewAccumulator([]string{"a", "b", "c"}, fdx.Options{})
	if err := acc.Add(keyedRelation(30)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	faults.Arm(faults.InternalPanic, faults.Config{Times: 1})
	if _, err := acc.Discover(); !errors.Is(err, fdx.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if _, err := acc.Discover(); err != nil {
		t.Fatalf("Discover after recovered panic: %v", err)
	}
}

func TestFaultPublicDeadline(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.SlowStage, faults.Config{Delay: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := fdx.DiscoverContext(ctx, keyedRelation(60), fdx.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !errors.Is(err, fdx.ErrCancelled) {
		t.Errorf("err = %v should also match ErrCancelled", err)
	}
}

func TestPublicDiagnosticsSurface(t *testing.T) {
	defer faults.Reset()
	faults.Arm(faults.CovarianceNaN, faults.Config{Times: 1})
	res, err := fdx.Discover(keyedRelation(60), fdx.Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if !res.Diagnostics.Degraded() {
		t.Fatal("degraded run not reported")
	}
	// Sanitized columns surface as attribute names at the public boundary.
	if got := res.Diagnostics.SanitizedColumns; len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("SanitizedColumns = %v, want [a c]", got)
	}

	healthy, err := fdx.Discover(keyedRelation(60), fdx.Options{})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if healthy.Diagnostics.Degraded() || !healthy.Diagnostics.GlassoConverged {
		t.Errorf("healthy diagnostics = %+v", healthy.Diagnostics)
	}
}
