package fdx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fdx"
)

// discoverTwice runs Discover twice with identical options and returns both
// results.
func discoverTwice(t *testing.T, opts fdx.Options) (*fdx.Result, *fdx.Result) {
	t.Helper()
	rel := noisyAddressRelation(rand.New(rand.NewSource(11)), 400, 0.03)
	a, err := fdx.Discover(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fdx.Discover(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// assertIdentical compares two results element-wise: same FD list (order,
// attributes, scores) and bit-identical autoregression matrices.
func assertIdentical(t *testing.T, a, b *fdx.Result) {
	t.Helper()
	if len(a.FDs) != len(b.FDs) {
		t.Fatalf("FD counts differ: %d vs %d\n%v\n%v", len(a.FDs), len(b.FDs), a.FDs, b.FDs)
	}
	for i := range a.FDs {
		x, y := a.FDs[i], b.FDs[i]
		if x.String() != y.String() || x.Score != y.Score {
			t.Errorf("FD %d differs: %v (score %v) vs %v (score %v)", i, x, x.Score, y, y.Score)
		}
	}
	for i := range a.B {
		for j := range a.B[i] {
			if a.B[i][j] != b.B[i][j] {
				t.Errorf("B[%d][%d] differs: %v vs %v", i, j, a.B[i][j], b.B[i][j])
			}
		}
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Errorf("Order[%d] differs: %d vs %d", i, a.Order[i], b.Order[i])
		}
	}
}

// TestDiscoverDeterministic checks that two runs with the same options and
// data agree exactly — the property the maporder/floatcmp analyzers guard.
func TestDiscoverDeterministic(t *testing.T) {
	a, b := discoverTwice(t, fdx.Options{Seed: 7})
	assertIdentical(t, a, b)
}

// TestDiscoverDeterministicParallel checks that the parallel transform does
// not perturb results: Workers > 1 must match both itself and a sequential
// run exactly.
func TestDiscoverDeterministicParallel(t *testing.T) {
	p1, p2 := discoverTwice(t, fdx.Options{Seed: 7, Workers: 4})
	assertIdentical(t, p1, p2)
	s1, _ := discoverTwice(t, fdx.Options{Seed: 7, Workers: 1})
	assertIdentical(t, s1, p1)
}

// TestDiscoverDeterministicAcrossWorkerCounts sweeps the worker knob across
// every stage it reaches (transform blocks, glasso columns, accumulator
// strata) and demands element-wise identical FDs and bit-for-bit identical
// B at 1, 4, and 8 workers: chunk boundaries and reduction orders depend
// only on problem sizes, never on the worker count (see internal/par).
func TestDiscoverDeterministicAcrossWorkerCounts(t *testing.T) {
	base, _ := discoverTwice(t, fdx.Options{Seed: 7, Workers: 1})
	for _, workers := range []int{4, 8} {
		got, again := discoverTwice(t, fdx.Options{Seed: 7, Workers: workers})
		assertIdentical(t, got, again)
		assertIdentical(t, base, got)
	}
}

// TestAccumulatorDeterministicAcrossWorkerCounts is the streaming variant:
// batched absorption with 1, 4, and 8 workers must produce bit-for-bit
// identical accumulated statistics, and therefore identical discovery
// results.
func TestAccumulatorDeterministicAcrossWorkerCounts(t *testing.T) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(11)), 400, 0.03)
	run := func(workers int) *fdx.Result {
		acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{Seed: 7, Workers: workers})
		const batch = 100
		for lo := 0; lo < rel.NumRows(); lo += batch {
			hi := lo + batch
			if hi > rel.NumRows() {
				hi = rel.NumRows()
			}
			if err := acc.Add(rel.Slice(lo, hi)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := acc.Discover()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{4, 8} {
		assertIdentical(t, base, run(workers))
	}
}

// groupedRelation builds a wide relation of g independent attribute
// pairs, each with a planted FD a_i -> b_i and value spaces disjoint
// across groups: between-group pair-equality correlations are near zero,
// so a screened discovery at a moderate λ splits the schema into one
// block per group.
func groupedRelation(rng *rand.Rand, groups, rows int, noise float64) *fdx.Relation {
	attrs := make([]string, 0, 2*groups)
	for g := 0; g < groups; g++ {
		attrs = append(attrs, fmt.Sprintf("a%d", g), fmt.Sprintf("b%d", g))
	}
	rel := fdx.NewRelation("grouped", attrs...)
	row := make([]string, 2*groups)
	for i := 0; i < rows; i++ {
		for g := 0; g < groups; g++ {
			v := rng.Intn(6)
			row[2*g] = fmt.Sprintf("a%d_%d", g, v)
			b := v
			if rng.Float64() < noise {
				b = rng.Intn(6)
			}
			row[2*g+1] = fmt.Sprintf("b%d_%d", g, b)
		}
		rel.AppendRow(append([]string(nil), row...))
	}
	return rel
}

// TestDiscoverWideScreenedDeterministic runs discovery on a wide
// block-structured relation where the covariance screening pass
// genuinely splits the solve, and demands element-wise identical FDs and
// bit-identical B across worker counts and across the float32 compact
// store — the end-to-end version of the blocked solver's determinism
// contract.
func TestDiscoverWideScreenedDeterministic(t *testing.T) {
	rel := groupedRelation(rand.New(rand.NewSource(31)), 6, 300, 0.02)
	run := func(opts fdx.Options) *fdx.Result {
		t.Helper()
		res, err := fdx.Discover(rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(fdx.Options{Seed: 7, Lambda: 0.3, Workers: 1})
	if base.Diagnostics.GlassoBlocks < 2 {
		t.Fatalf("GlassoBlocks = %d: screening found nothing, the blocked path is not exercised",
			base.Diagnostics.GlassoBlocks)
	}
	if len(base.FDs) == 0 {
		t.Fatal("no FDs discovered on a relation with planted dependencies")
	}
	for _, workers := range []int{4, 8} {
		assertIdentical(t, base, run(fdx.Options{Seed: 7, Lambda: 0.3, Workers: workers}))
	}
	for _, workers := range []int{1, 8} {
		compact := run(fdx.Options{Seed: 7, Lambda: 0.3, Workers: workers, CompactTransform: true})
		assertIdentical(t, base, compact)
		if compact.Diagnostics.GlassoBlocks != base.Diagnostics.GlassoBlocks {
			t.Fatalf("compact store changed the screening partition: %d vs %d blocks",
				compact.Diagnostics.GlassoBlocks, base.Diagnostics.GlassoBlocks)
		}
	}
}

// TestDiscoverDeterministicCompactTransform checks the float32 backing
// store's headline contract on the standard test relation: identical FDs
// and bit-identical B versus the float64 store, at multiple worker
// counts.
func TestDiscoverDeterministicCompactTransform(t *testing.T) {
	for _, workers := range []int{1, 4} {
		base, _ := discoverTwice(t, fdx.Options{Seed: 7, Workers: workers})
		compact, again := discoverTwice(t, fdx.Options{Seed: 7, Workers: workers, CompactTransform: true})
		assertIdentical(t, compact, again)
		assertIdentical(t, base, compact)
	}
}

// TestAccumulatorDeterministicCompactTransform is the streaming variant:
// batched absorption through the float32 store accumulates bit-identical
// statistics, so discovery matches the float64 store exactly.
func TestAccumulatorDeterministicCompactTransform(t *testing.T) {
	rel := noisyAddressRelation(rand.New(rand.NewSource(11)), 400, 0.03)
	run := func(compact bool) *fdx.Result {
		acc := fdx.NewAccumulator(rel.AttrNames(), fdx.Options{Seed: 7, Workers: 4, CompactTransform: compact})
		const batch = 100
		for lo := 0; lo < rel.NumRows(); lo += batch {
			hi := lo + batch
			if hi > rel.NumRows() {
				hi = rel.NumRows()
			}
			if err := acc.Add(rel.Slice(lo, hi)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := acc.Discover()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	assertIdentical(t, run(false), run(true))
}

// TestDiscoverDeterministicWithTelemetry checks that attaching a tracer and
// metrics registry changes nothing about the results: same FD list
// (element-wise) and bit-identical B as a bare run, with both the parallel
// and the sequential transform.
func TestDiscoverDeterministicWithTelemetry(t *testing.T) {
	for _, workers := range []int{4, 1} {
		bare, _ := discoverTwice(t, fdx.Options{Seed: 7, Workers: workers})
		traced, _ := discoverTwice(t, fdx.Options{
			Seed:    7,
			Workers: workers,
			Tracer:  fdx.NewTracer(),
			Metrics: fdx.NewMetrics(),
		})
		assertIdentical(t, bare, traced)
	}
}
