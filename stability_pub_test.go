package fdx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fdx"
)

func TestDiscoverStable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := fdx.NewRelation("t", "sku", "cat", "noise")
	for i := 0; i < 900; i++ {
		sku := rng.Intn(20)
		rel.AppendRow([]string{
			fmt.Sprintf("s%d", sku),
			fmt.Sprintf("c%d", sku%4),
			fmt.Sprintf("n%d", rng.Intn(10)),
		})
	}
	fds, freqs, err := fdx.DiscoverStable(rel, fdx.Options{Seed: 13}, fdx.StabilityOptions{Runs: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range fds {
		if fd.RHS == "cat" {
			found = true
		}
	}
	if !found {
		t.Errorf("stable sku->cat lost: %v", fds)
	}
	if len(freqs) == 0 {
		t.Fatal("no frequency table")
	}
	if freqs[0].Frequency < 0.9 {
		t.Errorf("top edge frequency %v, want near 1", freqs[0].Frequency)
	}
	for _, fd := range fds {
		if fd.RHS == "noise" {
			t.Errorf("noise attribute in stable FDs: %v", fd)
		}
	}
}
