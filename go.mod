module fdx

go 1.22
