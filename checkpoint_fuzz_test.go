package fdx_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fdx"
)

// fuzzSnapshotSeeds builds realistic seed inputs for FuzzLoadCheckpoint: a
// valid snapshot and WAL plus targeted mutations of each (version bump,
// flipped CRC, truncations).
func fuzzSnapshotSeeds(tb testing.TB) (snap, wal []byte) {
	tb.Helper()
	dir := tb.(*testing.F).TempDir()
	path := filepath.Join(dir, "seed.fdx")
	acc := fdx.NewAccumulator([]string{"zip", "city", "state"}, fdx.Options{Seed: 7})
	w, err := fdx.OpenWAL(path + fdx.WALSuffix)
	if err != nil {
		tb.Fatal(err)
	}
	defer w.Close()
	rng := rand.New(rand.NewSource(7))
	for b := 0; b < 2; b++ {
		rel := fdx.NewRelation("seed", "zip", "city", "state")
		for i := 0; i < 12; i++ {
			z := rng.Intn(4)
			if err := rel.AppendRow([]string{
				string(rune('a' + z)), string(rune('p' + z%3)), string(rune('x' + z%2)),
			}); err != nil {
				tb.Fatal(err)
			}
		}
		if err := acc.AddLogged(rel, w); err != nil {
			tb.Fatal(err)
		}
	}
	if err := acc.SaveCheckpoint(path); err != nil {
		tb.Fatal(err)
	}
	snap, err = os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	wal, err = os.ReadFile(path + fdx.WALSuffix)
	if err != nil {
		tb.Fatal(err)
	}
	return snap, wal
}

// FuzzLoadCheckpoint feeds arbitrary bytes through the checkpoint restore
// path. The contract: LoadCheckpoint either returns a valid Accumulator or
// an error wrapping ErrCorruptCheckpoint, ErrCheckpointVersion, or
// ErrBadInput — never a panic, whatever the bytes. The mode byte routes
// the fuzz data into the snapshot file (with an absent or valid WAL) or
// into the WAL beside a valid snapshot, so both decoders get coverage.
// Run longer campaigns with:
//
//	go test -fuzz FuzzLoadCheckpoint -fuzztime 30s .
func FuzzLoadCheckpoint(f *testing.F) {
	validSnap, validWAL := fuzzSnapshotSeeds(f)

	f.Add(uint8(0), validSnap)
	f.Add(uint8(1), validSnap)
	f.Add(uint8(2), validWAL)
	versioned := append([]byte(nil), validSnap...)
	versioned[8] = 99
	f.Add(uint8(0), versioned)
	crcFlip := append([]byte(nil), validSnap...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(uint8(0), crcFlip)
	f.Add(uint8(0), validSnap[:16])
	f.Add(uint8(0), validSnap[:len(validSnap)/2])
	f.Add(uint8(2), validWAL[:len(validWAL)-3])
	f.Add(uint8(2), []byte{})
	f.Add(uint8(0), []byte("FDXCKPT1"))

	f.Fuzz(func(t *testing.T, mode uint8, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "state.fdx")
		switch mode % 3 {
		case 0: // data is the snapshot, no WAL
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		case 1: // data is the snapshot, valid-but-unrelated WAL beside it
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path+fdx.WALSuffix, validWAL, 0o644); err != nil {
				t.Fatal(err)
			}
		case 2: // valid snapshot, data is the WAL
			if err := os.WriteFile(path, validSnap, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path+fdx.WALSuffix, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		acc, err := fdx.LoadCheckpoint(path, fdx.Options{Seed: 7})
		if err != nil {
			if !errors.Is(err, fdx.ErrCorruptCheckpoint) &&
				!errors.Is(err, fdx.ErrCheckpointVersion) &&
				!errors.Is(err, fdx.ErrBadInput) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
			return
		}
		if acc == nil {
			t.Fatal("nil accumulator with nil error")
		}
		// A restored accumulator must be usable: snapshotting it again and
		// restoring the copy has to round-trip without error.
		var buf bytes.Buffer
		if err := acc.Snapshot(&buf); err != nil {
			t.Fatalf("restored accumulator cannot snapshot: %v", err)
		}
		if _, err := fdx.RestoreAccumulator(&buf, fdx.Options{Seed: 7}); err != nil {
			t.Fatalf("re-restore failed: %v", err)
		}
	})
}
