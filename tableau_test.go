package fdx_test

import (
	"testing"

	"fdx"
)

func TestBuildTableau(t *testing.T) {
	rel := fdx.NewRelation("t", "zip", "city")
	for i := 0; i < 5; i++ {
		rel.AppendRow([]string{"60611", "chicago"})
		rel.AppendRow([]string{"53703", "madison"})
	}
	rel.AppendRow([]string{"53703", "madson"}) // typo subdomain

	tab, err := fdx.BuildTableau(rel, fdx.FD{LHS: []string{"zip"}, RHS: "city"}, fdx.TableauOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Patterns) != 2 {
		t.Fatalf("patterns = %v", tab.Patterns)
	}
	clean := tab.CleanPatterns()
	if len(clean) != 1 || clean[0].LHSValues[0] != "60611" {
		t.Errorf("clean = %v", clean)
	}
	dirty := tab.DirtyPatterns()
	if len(dirty) != 1 || dirty[0].RHSValue != "madison" {
		t.Errorf("dirty = %v", dirty)
	}
	if tab.GlobalConfidence >= 1 || tab.GlobalConfidence < 0.8 {
		t.Errorf("global confidence = %v", tab.GlobalConfidence)
	}
	if _, err := fdx.BuildTableau(rel, fdx.FD{LHS: []string{"zz"}, RHS: "city"}, fdx.TableauOptions{}); err == nil {
		t.Error("unknown attribute accepted")
	}
}
