package fdx_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// FDX paper's evaluation section. Each benchmark regenerates its
// table/figure through the experiment runners (internal/experiments) at
// reduced "fast" scale so `go test -bench=.` completes in minutes; the
// full-scale runs are produced by cmd/fdxbench (see EXPERIMENTS.md).

import (
	"testing"
	"time"

	"fdx/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Fast: true, Timeout: 2 * time.Second}
}

func benchExperiment(b *testing.B, name string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkTable1 regenerates the benchmark-network inventory (Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the synthetic settings grid (Table 2).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates the real-world data set summary (Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates the benchmark accuracy comparison (Table 4).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates the benchmark runtime comparison (Table 5).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates the real-world comparison (Table 6).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7 regenerates the imputation study (Table 7).
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8 regenerates the sparsity sweep (Table 8).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkTable9 regenerates the column-ordering study (Table 9).
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkFigure2 regenerates the synthetic-settings comparison (Fig. 2).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }

// BenchmarkFigure3 regenerates the Hospital heatmap case study (Fig. 3).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates RFI's Hospital output (Fig. 4).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkFigure5 regenerates the feature-selection case study (Fig. 5).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates the column scalability series (Fig. 6).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkFigure7 regenerates the noise sensitivity series (Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkAblation regenerates the stratified-vs-pooled covariance
// ablation (DESIGN.md design-choice study).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkRowScale regenerates the row-wise scalability extension series.
func BenchmarkRowScale(b *testing.B) { benchExperiment(b, "rowscale") }

// BenchmarkOrderFill regenerates the ordering fill-in extension table.
func BenchmarkOrderFill(b *testing.B) { benchExperiment(b, "orderfill") }
